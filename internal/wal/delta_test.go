package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"precis/internal/storage"
)

// testDelta builds a representative delta: upserts of every value kind, a
// tombstone, and full extras.
func testDelta() *DeltaData {
	return &DeltaData{
		BaseGen:     3,
		NextTupleID: 42,
		Relations: []storage.DirtyRelation{
			{
				Name: "AUTHOR",
				Upserts: []storage.Tuple{
					{ID: 7, Values: []storage.Value{storage.Int(9), storage.String("Borges"), storage.Float(5), storage.Bool(true)}},
					{ID: 12, Values: []storage.Value{storage.Int(10), storage.Null, storage.Float(1.5), storage.Bool(false)}},
				},
				Deletes: []storage.TupleID{3, 5},
			},
			{
				Name:    "BOOK",
				Deletes: []storage.TupleID{8},
			},
		},
		Synonyms: [][2]string{{"jlb", "Borges"}},
		Macros:   []string{`DEFINE M as "x."`},
		FKs:      []storage.ForeignKey{{FromRelation: "BOOK", FromColumn: "aid", ToRelation: "AUTHOR", ToColumn: "aid"}},
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	d := testDelta()
	raw, err := EncodeDelta(d)
	if err != nil {
		t.Fatalf("EncodeDelta: %v", err)
	}
	raw2, err := EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("EncodeDelta is not deterministic")
	}
	got, err := DecodeDelta("test.dlt", raw)
	if err != nil {
		t.Fatalf("DecodeDelta: %v", err)
	}
	// Re-encoding the decoded value must reproduce the bytes exactly
	// (nil vs empty slices are not observable through the codec).
	re, err := EncodeDelta(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, re) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", d, got)
	}
}

// TestDeltaDecodeTruncation cuts the encoded delta at every byte offset:
// each cut must classify as incomplete (a torn write), never decode as a
// shorter valid delta and never panic.
func TestDeltaDecodeTruncation(t *testing.T) {
	raw, err := EncodeDelta(testDelta())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(raw); cut++ {
		_, err := DecodeDelta("cut.dlt", raw[:cut])
		if err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// Every truncation that preserves whole frames must be IsIncomplete —
	// the torn-tail classification chain recovery relies on.
	if _, err := DecodeDelta("cut.dlt", raw[:len(raw)-1]); !IsIncomplete(err) {
		t.Fatalf("one-byte truncation is not incomplete: %v", err)
	}
	if _, err := DecodeDelta("cut.dlt", raw[:3]); !IsIncomplete(err) {
		t.Fatalf("mid-magic truncation is not incomplete: %v", err)
	}
}

// TestDeltaDecodeBitFlips flips one bit in every byte: the CRC framing must
// reject each variant.
func TestDeltaDecodeBitFlips(t *testing.T) {
	raw, err := EncodeDelta(testDelta())
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(raw); off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x10
		if _, err := DecodeDelta("flip.dlt", mut); err == nil {
			t.Fatalf("bit flip at %d decoded successfully", off)
		}
	}
}

// TestApplyDeltaMatchesReplay: applying a delta captured from a mutated
// database must land tuples at the same positions direct mutation did,
// including the tombstone-for-unseen-id no-op.
func TestApplyDeltaMatchesReplay(t *testing.T) {
	// Base state, snapshotted before mutation.
	base := testDB(t)
	baseRaw := mustEncode(&SnapshotData{DB: base})

	// Live copy: enable tracking, mutate.
	live, err := DecodeSnapshot("base.snap", baseRaw)
	if err != nil {
		t.Fatal(err)
	}
	live.DB.EnableDirtyTracking()
	newID, err := live.DB.Insert("AUTHOR", storage.Int(9), storage.String("Borges"), storage.Float(5), storage.Bool(true))
	if err != nil {
		t.Fatal(err)
	}
	var firstBook storage.TupleID
	live.DB.Relation("BOOK").Scan(func(tp storage.Tuple) bool { firstBook = tp.ID; return false })
	if _, err := live.DB.Delete("BOOK", firstBook); err != nil {
		t.Fatal(err)
	}
	// Insert-then-delete within the interval: must become a no-op tombstone.
	tmp, err := live.DB.Insert("AUTHOR", storage.Int(99), storage.String("Ghost"), storage.Float(0), storage.Bool(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := live.DB.Delete("AUTHOR", tmp); err != nil {
		t.Fatal(err)
	}
	ds := live.DB.CaptureDirty()
	if ds == nil {
		t.Fatal("CaptureDirty returned nil with tracking enabled")
	}
	d := &DeltaData{
		NextTupleID: live.DB.NextTupleID(),
		Relations:   ds.Relations,
		FKs:         live.DB.ForeignKeys(),
	}
	raw, err := EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DecodeDelta("d.dlt", raw)
	if err != nil {
		t.Fatal(err)
	}

	// Apply to a fresh decode of the base and compare scan orders.
	target, err := DecodeSnapshot("base.snap", baseRaw)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyDelta(target, d2, nil); err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if target.DB.NextTupleID() != live.DB.NextTupleID() {
		t.Fatalf("NextTupleID %d, want %d", target.DB.NextTupleID(), live.DB.NextTupleID())
	}
	for _, rel := range []string{"AUTHOR", "BOOK"} {
		var want, got []storage.TupleID
		live.DB.Relation(rel).Scan(func(tp storage.Tuple) bool { want = append(want, tp.ID); return true })
		target.DB.Relation(rel).Scan(func(tp storage.Tuple) bool { got = append(got, tp.ID); return true })
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s scan order: want %v, got %v", rel, want, got)
		}
	}
	if _, ok := target.DB.Relation("AUTHOR").Get(newID); !ok {
		t.Fatal("inserted author missing after delta apply")
	}
	if _, ok := target.DB.Relation("AUTHOR").Get(tmp); ok {
		t.Fatal("insert-then-delete tuple resurrected by delta apply")
	}
}

// TestStoreDeltaChainRecovery drives the store's two-phase protocol
// directly: deltas stack into a chain, a reopen reconstructs the exact
// state, and the manifest — even a lying one — never overrides the files.
func TestStoreDeltaChainRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, storeConfig())
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t)
	if err := s.Initialize(&SnapshotData{DB: db}); err != nil {
		t.Fatal(err)
	}
	data := &SnapshotData{DB: db}

	checkpointDelta := func() {
		t.Helper()
		h, err := s.BeginCheckpoint()
		if err != nil {
			t.Fatalf("BeginCheckpoint: %v", err)
		}
		ds := db.CaptureDirty()
		if err := s.CompleteDelta(h, &DeltaData{
			NextTupleID: db.NextTupleID(),
			Relations:   ds.Relations,
			FKs:         db.ForeignKeys(),
			Synonyms:    data.Synonyms,
			Macros:      data.Macros,
		}); err != nil {
			t.Fatalf("CompleteDelta: %v", err)
		}
	}
	logInsert := func(vals ...storage.Value) {
		t.Helper()
		id := db.NextTupleID()
		if err := s.Append(Record{Op: OpInsert, Rel: "AUTHOR", ID: id, Values: vals}); err != nil {
			t.Fatal(err)
		}
		if err := db.InsertWithID("AUTHOR", id, vals...); err != nil {
			t.Fatal(err)
		}
	}

	logInsert(storage.Int(100), storage.String("Eco"), storage.Float(4.5), storage.Bool(true))
	checkpointDelta()
	logInsert(storage.Int(101), storage.String("Calvino"), storage.Float(4.8), storage.Bool(false))
	checkpointDelta()
	logInsert(storage.Int(102), storage.String("Levi"), storage.Float(4.2), storage.Bool(true))
	// The last insert stays in the WAL tail only.

	wantChain := s.Chain()
	if len(wantChain) != 3 {
		t.Fatalf("chain %v, want base + 2 deltas", wantChain)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reopen := func() (*Store, *Recovered) {
		t.Helper()
		s2, rec, err := Open(dir, storeConfig())
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		return s2, rec
	}
	s2, rec := reopen()
	if rec.ChainDepth != 3 || rec.DeltasApplied != 2 {
		t.Fatalf("recovered chain depth %d / %d deltas, want 3 / 2", rec.ChainDepth, rec.DeltasApplied)
	}
	names := map[string]bool{}
	rec.Data.DB.Relation("AUTHOR").Scan(func(tp storage.Tuple) bool {
		names[tp.Values[1].AsString()] = true
		return true
	})
	for _, want := range []string{"Eco", "Calvino", "Levi"} {
		if !names[want] {
			t.Fatalf("recovered authors %v missing %s", names, want)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// A manifest that lies about the chain is advisory: recovery trusts the
	// files and still succeeds.
	if err := writeManifest(dir, []uint64{999}); err != nil {
		t.Fatal(err)
	}
	s3, rec3 := reopen()
	if rec3.Data == nil || rec3.ChainDepth == 0 {
		t.Fatal("recovery with a lying manifest lost the chain")
	}
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreIncompleteTipDeltaDropped: a torn tip delta whose content the
// retained logs still cover (the crash interrupted the checkpoint writing
// it, so GC never ran) is dropped and recovery proceeds from the logs.
func TestStoreIncompleteTipDeltaDropped(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, storeConfig())
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t)
	if err := s.Initialize(&SnapshotData{DB: db}); err != nil {
		t.Fatal(err)
	}
	id := db.NextTupleID()
	vals := []storage.Value{storage.Int(100), storage.String("Eco"), storage.Float(4.5), storage.Bool(true)}
	if err := s.Append(Record{Op: OpInsert, Rel: "AUTHOR", ID: id, Values: vals}); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertWithID("AUTHOR", id, vals...); err != nil {
		t.Fatal(err)
	}
	// Begin a checkpoint (rotates to gen 2, wal-1 retained) and "crash"
	// while writing the delta: a truncated delta-2 lands on disk.
	h, err := s.BeginCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	ds := db.CaptureDirty()
	full, err := EncodeDelta(&DeltaData{BaseGen: 1, NextTupleID: db.NextTupleID(), Relations: ds.Relations, FKs: db.ForeignKeys()})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, deltaName(h.Gen())), full[:len(full)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	h.Abort()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec, err := Open(dir, storeConfig())
	if err != nil {
		t.Fatalf("recovery with droppable torn tip delta failed: %v", err)
	}
	if rec.DeltasApplied != 0 {
		t.Fatalf("torn delta was applied (%d deltas)", rec.DeltasApplied)
	}
	if _, ok := rec.Data.DB.Relation("AUTHOR").Get(id); !ok {
		t.Fatal("log-covered insert missing after dropping torn delta")
	}
	if exists(filepath.Join(dir, deltaName(2))) {
		t.Fatal("torn tip delta not removed")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreIncompleteTipDeltaNotCovered: the same torn tip delta becomes a
// hard CorruptionError when the logs that covered it are gone — dropping it
// would silently lose committed data.
func TestStoreIncompleteTipDeltaNotCovered(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, storeConfig())
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t)
	if err := s.Initialize(&SnapshotData{DB: db}); err != nil {
		t.Fatal(err)
	}
	id := db.NextTupleID()
	vals := []storage.Value{storage.Int(100), storage.String("Eco"), storage.Float(4.5), storage.Bool(true)}
	if err := s.Append(Record{Op: OpInsert, Rel: "AUTHOR", ID: id, Values: vals}); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertWithID("AUTHOR", id, vals...); err != nil {
		t.Fatal(err)
	}
	h, err := s.BeginCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	ds := db.CaptureDirty()
	if err := s.CompleteDelta(h, &DeltaData{NextTupleID: db.NextTupleID(), Relations: ds.Relations, FKs: db.ForeignKeys()}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// GC removed wal-1; now truncate the completed delta.
	if exists(filepath.Join(dir, walName(1))) {
		t.Fatal("wal-1 survived the completed delta checkpoint")
	}
	path := filepath.Join(dir, deltaName(2))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, storeConfig())
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("uncovered torn delta: error %v, want CorruptionError", err)
	}
}

// TestManifestRoundTrip exercises the advisory manifest codec.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	chain := []uint64{4, 7, 9}
	if err := writeManifest(dir, chain); err != nil {
		t.Fatal(err)
	}
	got := readManifest(dir)
	if !reflect.DeepEqual(got, chain) {
		t.Fatalf("manifest round trip: %v, want %v", got, chain)
	}
	// Any damage degrades to "no manifest", never an error.
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(raw); off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x04
		if err := os.WriteFile(filepath.Join(dir, manifestName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if got := readManifest(dir); got != nil && !reflect.DeepEqual(got, chain) {
			t.Fatalf("corrupt manifest (flip at %d) decoded to %v", off, got)
		}
	}
}

// FuzzDeltaDecode feeds adversarial bytes to the delta decoder: it must
// never panic and never allocate beyond what the input justifies; valid
// inputs must survive a re-encode round trip.
func FuzzDeltaDecode(f *testing.F) {
	seed, err := EncodeDelta(testDelta())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])                                                        // truncation
	f.Add([]byte(deltaMagic))                                                        // magic only
	f.Add([]byte("PRCDLT2junk"))                                                     // wrong magic
	f.Add(mustFrame([]byte(deltaMagic), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x01})) // absurd uvarint header
	mut := append([]byte(nil), seed...)
	mut[len(mut)/3] ^= 0x40
	f.Add(mut) // flipped bit
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1<<16 {
			return
		}
		d, err := DecodeDelta("", raw)
		if err != nil {
			return
		}
		re, err := EncodeDelta(d)
		if err != nil {
			t.Fatalf("re-encoding a decoded delta failed: %v", err)
		}
		if _, err := DecodeDelta("", re); err != nil {
			t.Fatalf("re-encoded delta does not decode: %v", err)
		}
	})
}

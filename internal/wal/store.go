package wal

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Store.
type Config struct {
	// Fsync is the WAL durability policy.
	Fsync FsyncPolicy
	// FsyncInterval paces FsyncInterval flushing (0: DefaultFsyncInterval).
	FsyncInterval time.Duration
	// Logger receives recovery warnings and checkpoint notes; nil uses
	// log.Default().
	Logger *log.Logger
}

// Recovered reports what Open reconstructed from disk.
type Recovered struct {
	// Data is the recovered state, nil when the directory held no snapshot
	// (a fresh database — the caller seeds it via Initialize).
	Data *SnapshotData
	// Gen is the active generation.
	Gen uint64
	// SnapshotPath is the snapshot file loaded ("" when fresh).
	SnapshotPath string
	// WALRecords is how many log records were replayed on top of the
	// snapshot.
	WALRecords int
	// TornBytes is how many bytes of torn WAL tail were truncated.
	TornBytes int64
	// Duration is the wall-clock recovery time.
	Duration time.Duration
}

// Store manages one data directory: the current snapshot generation and its
// write-ahead log. Callers serialize Append against Checkpoint (the engine
// holds its mutation lock for both); Stats/LogSize are safe from any
// goroutine.
type Store struct {
	dir string
	cfg Config
	log *log.Logger

	mu          sync.Mutex
	gen         uint64
	w           *Writer
	metrics     *Metrics
	checkpoints uint64
	lastCkpt    time.Time
	closed      bool

	// epoch is the failover fencing epoch (see epoch.go); fencedBy, when
	// non-zero, is the newer epoch that deposed this store — every append
	// fails with ErrFenced until the store rejoins at that epoch or later.
	epoch    uint64
	fencedBy uint64

	// genEnds records the final durable frontier of rotated (and closed)
	// generations, so a replication streamer crossing a rotation knows
	// where the old log ends. Pruned to the most recent few rotations.
	genEnds map[uint64]genEnd

	// Replication subscribers, woken (coalesced) whenever the durable
	// frontier advances or the generation rotates. Guarded by subMu, not
	// mu: the writer's advance hook fires from append/fsync paths that
	// must not take the store lock.
	subMu sync.Mutex
	subs  map[int]chan struct{}
	subID int

	// commitGate, when set, is called after every locally successful
	// Append with the record's position; Append does not return until the
	// gate does. Synchronous replication installs its quorum wait here, so
	// the gate rides the same group-commit path that makes the record
	// locally durable. A gate error is returned from Append, but the
	// record stays in the log — the caller distinguishes "not written"
	// from "written locally, replication guarantee not met".
	commitGate atomic.Pointer[CommitGate]
}

// CommitGate blocks a locally durable append until an external commit
// condition (a replication quorum) is satisfied. records is the 1-based
// index of the appended record within gen.
type CommitGate func(gen uint64, records int64) error

// genEnd is the durable frontier a generation's log ended at.
type genEnd struct {
	records int64
	bytes   int64
}

// Open mounts dir, recovering whatever a previous process left: it loads
// the newest valid snapshot, replays its WAL (truncating a torn tail with a
// warning), and opens the log for appending. Corruption — a checksum
// mismatch in the snapshot or in the middle of the WAL — is returned as a
// *CorruptionError with file, offset, and record index; it is never
// silently skipped. An empty directory yields Recovered.Data == nil; call
// Initialize with the seed state before appending.
func Open(dir string, cfg Config) (*Store, *Recovered, error) {
	if dir == "" {
		return nil, nil, fmt.Errorf("wal: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	lg := cfg.Logger
	if lg == nil {
		lg = log.Default()
	}
	s := &Store{dir: dir, cfg: cfg, log: lg}

	start := time.Now()
	rec := &Recovered{}
	gens, err := s.listGenerations()
	if err != nil {
		return nil, nil, err
	}
	// Remove abandoned temp files from an interrupted snapshot or epoch
	// write.
	for _, pattern := range []string{".tmp-snap-*", ".tmp-epoch-*"} {
		tmps, _ := filepath.Glob(filepath.Join(dir, pattern))
		for _, t := range tmps {
			lg.Printf("wal: removing abandoned temp file %s", t)
			_ = os.Remove(t)
		}
	}
	if err := s.loadEpoch(); err != nil {
		return nil, nil, err
	}

	// Walk snapshot generations newest-first. An incomplete snapshot (an
	// interrupted write that still became visible — possible on filesystems
	// without atomic-rename durability) falls back to the previous
	// generation with a warning; a corrupt one (flipped bits) hard-fails.
	for i := len(gens) - 1; i >= 0; i-- {
		g := gens[i]
		path := filepath.Join(dir, snapshotName(g))
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		data, err := DecodeSnapshot(path, raw)
		if err != nil {
			if IsIncomplete(err) && !exists(filepath.Join(dir, walName(g))) {
				// No WAL was ever opened for this generation, so nothing
				// after the previous snapshot is lost by ignoring it.
				lg.Printf("wal: ignoring incomplete snapshot %s (%v)", path, err)
				_ = os.Remove(path)
				continue
			}
			return nil, nil, err
		}
		rec.Data = data
		rec.Gen = g
		rec.SnapshotPath = path
		break
	}

	if rec.Data == nil {
		if len(gens) > 0 {
			return nil, nil, fmt.Errorf("wal: %s holds %d snapshot file(s) but none is loadable", dir, len(gens))
		}
		if leftover := s.walFiles(); len(leftover) > 0 {
			return nil, nil, fmt.Errorf("wal: %s holds WAL files %v but no snapshot; refusing to guess at a base state", dir, leftover)
		}
		rec.Gen = 0 // Initialize will move to generation 1
		rec.Duration = time.Since(start)
		return s, rec, nil
	}

	// Replay the active generation's log on top of the snapshot.
	walPath := filepath.Join(dir, walName(rec.Gen))
	info, err := ReplayFile(walPath, func(r Record) error { return r.apply(rec.Data) })
	if err != nil {
		return nil, nil, err
	}
	rec.WALRecords = info.Records
	rec.TornBytes = info.TornBytes
	if info.TornBytes > 0 {
		lg.Printf("wal: truncated torn tail of %s: %d byte(s) dropped (%s) — last write did not survive the crash",
			walPath, info.TornBytes, info.TornDetail)
	}

	w, err := openWriter(walPath, cfg.Fsync, cfg.FsyncInterval)
	if err != nil {
		return nil, nil, err
	}
	w.setReplayed(int64(info.Records))
	w.OnAdvance(s.notifySubs)
	s.gen = rec.Gen
	s.w = w
	// The recovered snapshot is the last checkpoint: date LastCkpt from its
	// mtime (falling back to now) so a configured CheckpointEvery does not
	// see a zero time and fire an immediate checkpoint on every boot, and
	// Stats reports a truthful last_checkpoint after restart.
	s.lastCkpt = time.Now()
	if st, err := os.Stat(rec.SnapshotPath); err == nil {
		s.lastCkpt = st.ModTime()
	}
	s.gcLocked(rec.Gen)
	rec.Duration = time.Since(start)
	return s, rec, nil
}

// Initialize seeds an empty directory: it writes the generation-1 snapshot
// of data and opens its WAL. Only valid after an Open that returned
// Recovered.Data == nil.
func (s *Store) Initialize(data *SnapshotData) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w != nil || s.gen != 0 {
		return fmt.Errorf("wal: store already initialized (generation %d)", s.gen)
	}
	if _, err := WriteSnapshot(s.dir, 1, data); err != nil {
		return err
	}
	w, err := openWriter(filepath.Join(s.dir, walName(1)), s.cfg.Fsync, s.cfg.FsyncInterval)
	if err != nil {
		return err
	}
	w.SetMetrics(s.metrics)
	w.OnAdvance(s.notifySubs)
	s.gen = 1
	s.w = w
	s.lastCkpt = time.Now()
	return nil
}

// SetCommitGate installs (or, with nil, removes) the commit gate Append
// runs after each locally successful append. Safe to call concurrently
// with appends; an in-flight Append uses whichever gate it loads.
func (s *Store) SetCommitGate(g CommitGate) {
	if g == nil {
		s.commitGate.Store(nil)
		return
	}
	s.commitGate.Store(&g)
}

// Append logs one mutation record. With a commit gate installed, Append
// additionally blocks until the gate releases the record's position; a
// gate error is returned with the record already in the local log (see
// CommitGate).
func (s *Store) Append(r Record) error {
	return s.append(r.encode(make([]byte, 0, 64)))
}

// AppendRaw logs one already-encoded record payload verbatim — the
// follower's write-through path, which must keep its log byte-identical
// to the primary's.
func (s *Store) AppendRaw(payload []byte) error {
	return s.append(payload)
}

func (s *Store) append(payload []byte) error {
	s.mu.Lock()
	w := s.w
	gen := s.gen
	closed := s.closed
	fencedBy := s.fencedBy
	s.mu.Unlock()
	if closed || w == nil {
		return fmt.Errorf("wal: store is closed")
	}
	if fencedBy != 0 {
		// A deposed primary must never make another write durable: the
		// fence outranks even a caller that believes it is still primary.
		return fmt.Errorf("%w (deposed by epoch %d)", ErrFenced, fencedBy)
	}
	records, err := w.Append(payload)
	if err != nil {
		return err
	}
	if gp := s.commitGate.Load(); gp != nil {
		return (*gp)(gen, records)
	}
	return nil
}

// Checkpoint writes data as the next snapshot generation, rotates the WAL,
// and garbage-collects every older generation. The caller must guarantee no
// Append runs concurrently (the engine holds its mutation lock). On
// failure the previous generation stays fully intact.
func (s *Store) Checkpoint(data *SnapshotData) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.w == nil {
		return fmt.Errorf("wal: store is closed")
	}
	start := time.Now()
	next := s.gen + 1
	if _, err := WriteSnapshot(s.dir, next, data); err != nil {
		return err
	}
	// The snapshot is durable: everything in the old log is now redundant.
	// Open the new generation's log before retiring the old one so there is
	// no window with no writable log.
	nw, err := openWriter(filepath.Join(s.dir, walName(next)), s.cfg.Fsync, s.cfg.FsyncInterval)
	if err != nil {
		// Roll back to the old generation: remove the orphan snapshot.
		_ = os.Remove(filepath.Join(s.dir, snapshotName(next)))
		return err
	}
	nw.SetMetrics(s.metrics)
	nw.OnAdvance(s.notifySubs)
	old := s.w
	oldGen := s.gen
	s.w = nw
	s.gen = next
	s.checkpoints++
	s.lastCkpt = time.Now()
	_ = old.Close()
	// Close synced, so the old writer's frontier is final: record where the
	// retired generation ends for streamers still crossing it. (If the old
	// writer was poisoned, the published frontier may exceed the truncated
	// file; a streamer then hits EOF mid-generation, drops its link, and the
	// follower re-bootstraps from the snapshot just written — self-healing.)
	r, b := old.DurableFrontier()
	if s.genEnds == nil {
		s.genEnds = make(map[uint64]genEnd)
	}
	s.genEnds[oldGen] = genEnd{records: r, bytes: b}
	for g := range s.genEnds {
		if g+16 <= next {
			delete(s.genEnds, g)
		}
	}
	s.gcLocked(next)
	if s.metrics != nil {
		s.metrics.Checkpoints.Inc()
		s.metrics.CheckpointSecs.ObserveNanos(time.Since(start).Nanoseconds())
	}
	s.notifySubs()
	return nil
}

// InstallSnapshot makes raw (an already-encoded snapshot, as streamed from
// a replication primary) the store's entire state at generation gen: the
// snapshot is written durably, a fresh WAL is opened for gen, and every
// other generation's files are removed. This is the follower's bootstrap
// and re-bootstrap path — unlike Checkpoint, the generation number comes
// from the stream (it may jump forward past GC'd generations, or even
// backward after a stale-primary restart), so alignment with the primary's
// numbering is preserved. The caller must guarantee no Append runs
// concurrently.
func (s *Store) InstallSnapshot(gen uint64, raw []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: store is closed")
	}
	if gen == 0 {
		return fmt.Errorf("wal: cannot install snapshot at generation 0")
	}
	if _, err := WriteRawSnapshot(s.dir, gen, raw); err != nil {
		return err
	}
	// A WAL for this generation may already exist — a deposed primary
	// rejoining at the same generation number carries a diverged, unacked
	// suffix in it. The writer opens O_APPEND, so the stale file must go:
	// the installed snapshot plus the primary's re-streamed records are the
	// whole truth from here on.
	if err := os.Remove(filepath.Join(s.dir, walName(gen))); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("wal: install snapshot: removing stale log: %w", err)
	}
	nw, err := openWriter(filepath.Join(s.dir, walName(gen)), s.cfg.Fsync, s.cfg.FsyncInterval)
	if err != nil {
		_ = os.Remove(filepath.Join(s.dir, snapshotName(gen)))
		return err
	}
	nw.SetMetrics(s.metrics)
	nw.OnAdvance(s.notifySubs)
	if s.w != nil {
		_ = s.w.Close()
	}
	s.w = nw
	s.gen = gen
	s.lastCkpt = time.Now()
	s.genEnds = nil
	// Remove every other generation — including newer ones a stale-primary
	// re-bootstrap would otherwise leave for recovery to prefer.
	entries, err := os.ReadDir(s.dir)
	if err == nil {
		for _, e := range entries {
			name := e.Name()
			var g uint64
			switch {
			case parseGen(name, "snap-", ".snap", &g), parseGen(name, "wal-", ".log", &g):
				if g != gen {
					if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
						s.log.Printf("wal: install snapshot: cannot remove %s: %v", name, err)
					}
				}
			}
		}
	}
	s.notifySubs()
	return nil
}

// gcLocked removes snapshots and logs of generations older than keep.
func (s *Store) gcLocked(keep uint64) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		var g uint64
		switch {
		case parseGen(name, "snap-", ".snap", &g), parseGen(name, "wal-", ".log", &g):
			if g < keep {
				if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
					s.log.Printf("wal: gc: cannot remove %s: %v", name, err)
				}
			}
		}
	}
}

// Sync forces the active log to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	w := s.w
	s.mu.Unlock()
	if w == nil {
		return nil
	}
	return w.Sync()
}

// Close flushes and closes the active log. The store refuses further
// appends and checkpoints afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.w == nil {
		return nil
	}
	err := s.w.Close()
	r, b := s.w.DurableFrontier()
	if s.genEnds == nil {
		s.genEnds = make(map[uint64]genEnd)
	}
	s.genEnds[s.gen] = genEnd{records: r, bytes: b}
	s.w = nil
	s.notifySubs()
	return err
}

// SetMetrics wires instruments into the store and its active writer.
func (s *Store) SetMetrics(m *Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = m
	if s.w != nil {
		s.w.SetMetrics(m)
	}
}

// Stats snapshots the store's counters.
type Stats struct {
	Dir         string    `json:"dir"`
	Fsync       string    `json:"fsync"`
	Generation  uint64    `json:"generation"`
	WALBytes    int64     `json:"wal_bytes"`
	WALRecords  int64     `json:"wal_records"`
	Checkpoints uint64    `json:"checkpoints"`
	LastCkpt    time.Time `json:"last_checkpoint"`
}

// Stats returns the store's current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Dir:         s.dir,
		Fsync:       s.cfg.Fsync.String(),
		Generation:  s.gen,
		Checkpoints: s.checkpoints,
		LastCkpt:    s.lastCkpt,
	}
	if s.w != nil {
		st.WALBytes = s.w.Size()
		st.WALRecords = s.w.Records()
	}
	return st
}

// LogSize returns the active WAL's size in bytes (0 when closed).
func (s *Store) LogSize() int64 {
	s.mu.Lock()
	w := s.w
	s.mu.Unlock()
	if w == nil {
		return 0
	}
	return w.Size()
}

// Generation returns the active snapshot generation.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Frontier is the durable replication frontier: every record of generation
// Gen below Records (occupying Bytes bytes of its log) is safe to stream
// to a follower.
type Frontier struct {
	Gen     uint64
	Records int64
	Bytes   int64
}

// Frontier returns the current durable frontier. After Close it reports
// the final frontier of the last generation.
func (s *Store) Frontier() Frontier {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		if end, ok := s.genEnds[s.gen]; ok {
			return Frontier{Gen: s.gen, Records: end.records, Bytes: end.bytes}
		}
		return Frontier{Gen: s.gen}
	}
	r, b := s.w.DurableFrontier()
	return Frontier{Gen: s.gen, Records: r, Bytes: b}
}

// GenEnd returns the final durable record count of a rotated generation,
// or ok=false when gen is still active or rotated out of memory.
func (s *Store) GenEnd(gen uint64) (records int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen == s.gen && s.w != nil {
		return 0, false
	}
	end, ok := s.genEnds[gen]
	return end.records, ok
}

// Subscribe registers for durable-frontier advances: the returned channel
// receives a coalesced signal whenever the frontier moves or the
// generation rotates. The caller re-reads Frontier after each signal and
// must call cancel when done.
func (s *Store) Subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	s.subMu.Lock()
	if s.subs == nil {
		s.subs = make(map[int]chan struct{})
	}
	id := s.subID
	s.subID++
	s.subs[id] = ch
	s.subMu.Unlock()
	cancel := func() {
		s.subMu.Lock()
		delete(s.subs, id)
		s.subMu.Unlock()
	}
	return ch, cancel
}

// notifySubs wakes every subscriber (non-blocking: a pending signal
// coalesces). Fired from writer advance hooks, rotation, and close.
func (s *Store) notifySubs() {
	s.subMu.Lock()
	for _, ch := range s.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	s.subMu.Unlock()
}

// SnapshotPath returns the current generation and its snapshot file path
// (the newest durable snapshot — what a follower bootstraps from).
func (s *Store) SnapshotPath() (uint64, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen, filepath.Join(s.dir, snapshotName(s.gen))
}

// WALPath returns the log file path of generation gen. The file may have
// been garbage-collected; callers handle open failure.
func (s *Store) WALPath(gen uint64) string {
	return filepath.Join(s.dir, walName(gen))
}

// listGenerations returns the snapshot generations present, ascending.
func (s *Store) listGenerations() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		var g uint64
		if parseGen(e.Name(), "snap-", ".snap", &g) {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// walFiles lists the WAL file names present, sorted.
func (s *Store) walFiles() []string {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		var g uint64
		if parseGen(e.Name(), "wal-", ".log", &g) {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// parseGen extracts the 16-hex-digit generation from prefix<gen>suffix.
func parseGen(name, prefix, suffix string, out *uint64) bool {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return false
	}
	var g uint64
	for i := 0; i < 16; i++ {
		c := hex[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return false
		}
		g = g<<4 | d
	}
	*out = g
	return true
}

func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

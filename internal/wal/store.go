package wal

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"precis/internal/faultinject"
)

// ErrUnsyncedLog means a checkpoint rotation could not finalize the active
// log (its writer is poisoned by an earlier fsync failure). Incremental
// checkpoints are impossible in this state — recovery may need the log a
// delta would let GC collect — but CheckpointFull still heals it by writing
// the full snapshot before abandoning the unsyncable log.
var ErrUnsyncedLog = errors.New("wal: cannot sync log for rotation")

// Config tunes a Store.
type Config struct {
	// Fsync is the WAL durability policy.
	Fsync FsyncPolicy
	// FsyncInterval paces FsyncInterval flushing (0: DefaultFsyncInterval).
	FsyncInterval time.Duration
	// Logger receives recovery warnings and checkpoint notes; nil uses
	// log.Default().
	Logger *log.Logger
	// Observer, when set, watches recovery reconstruct the database — the
	// base snapshot, every delta-applied tuple, every replayed WAL record —
	// so the engine can keep a persisted inverted index current instead of
	// rebuilding it.
	Observer RecoveryObserver
}

// Recovered reports what Open reconstructed from disk.
type Recovered struct {
	// Data is the recovered state, nil when the directory held no snapshot
	// (a fresh database — the caller seeds it via Initialize).
	Data *SnapshotData
	// Gen is the active generation.
	Gen uint64
	// SnapshotPath is the base snapshot file loaded ("" when fresh).
	SnapshotPath string
	// ChainDepth is the checkpoint chain length loaded (1 = full snapshot
	// only, each delta adds one).
	ChainDepth int
	// DeltasApplied is how many delta checkpoints were applied on top of
	// the base snapshot.
	DeltasApplied int
	// WALRecords is how many log records were replayed on top of the
	// chain.
	WALRecords int
	// TornBytes is how many bytes of torn WAL tail were truncated.
	TornBytes int64
	// Duration is the wall-clock recovery time.
	Duration time.Duration
}

// Store manages one data directory: the current checkpoint chain (a full
// snapshot plus zero or more delta checkpoints) and its write-ahead log.
// Callers serialize Append against checkpoints (the engine holds its
// mutation lock for rotation and serializes whole checkpoints itself);
// Stats/LogSize are safe from any goroutine.
type Store struct {
	dir string
	cfg Config
	log *log.Logger

	mu          sync.Mutex
	gen         uint64
	w           *Writer
	metrics     *Metrics
	checkpoints uint64
	lastCkpt    time.Time
	closed      bool

	// chain is the live checkpoint chain: chain[0] is a full snapshot
	// generation, every later element a delta generation, ascending. The
	// active log generation gen is >= the chain tip; it runs ahead of it
	// only while a begun checkpoint has not completed.
	chain []uint64
	// deltaBytes / fullBytes are cumulative checkpoint bytes written by
	// kind, for the bytes-per-checkpoint story in stats and metrics.
	deltaBytes int64
	fullBytes  int64

	// epoch is the failover fencing epoch (see epoch.go); fencedBy, when
	// non-zero, is the newer epoch that deposed this store — every append
	// fails with ErrFenced until the store rejoins at that epoch or later.
	epoch    uint64
	fencedBy uint64

	// genEnds records the final durable frontier of rotated (and closed)
	// generations, so a replication streamer crossing a rotation knows
	// where the old log ends. Pruned to the most recent few rotations.
	genEnds map[uint64]genEnd

	// Replication subscribers, woken (coalesced) whenever the durable
	// frontier advances or the generation rotates. Guarded by subMu, not
	// mu: the writer's advance hook fires from append/fsync paths that
	// must not take the store lock.
	subMu sync.Mutex
	subs  map[int]chan struct{}
	subID int

	// commitGate, when set, is called after every locally successful
	// Append with the record's position; Append does not return until the
	// gate does. Synchronous replication installs its quorum wait here, so
	// the gate rides the same group-commit path that makes the record
	// locally durable. A gate error is returned from Append, but the
	// record stays in the log — the caller distinguishes "not written"
	// from "written locally, replication guarantee not met".
	commitGate atomic.Pointer[CommitGate]
}

// CommitGate blocks a locally durable append until an external commit
// condition (a replication quorum) is satisfied. records is the 1-based
// index of the appended record within gen.
type CommitGate func(gen uint64, records int64) error

// genEnd is the durable frontier a generation's log ended at.
type genEnd struct {
	records int64
	bytes   int64
}

// Open mounts dir, recovering whatever a previous process left: it loads
// the newest valid base snapshot, applies the delta checkpoints chained on
// top of it, replays every WAL from the chain tip through the newest
// generation (truncating a torn final tail with a warning), and opens the
// log for appending. Corruption — a checksum mismatch in a snapshot, a
// delta, or the middle of a WAL; a broken chain link; a gap in the log
// sequence — is returned as a *CorruptionError (or a hard error naming the
// gap); it is never silently skipped. An empty directory yields
// Recovered.Data == nil; call Initialize with the seed state before
// appending.
func Open(dir string, cfg Config) (*Store, *Recovered, error) {
	if dir == "" {
		return nil, nil, fmt.Errorf("wal: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	lg := cfg.Logger
	if lg == nil {
		lg = log.Default()
	}
	s := &Store{dir: dir, cfg: cfg, log: lg}

	start := time.Now()
	rec := &Recovered{}
	snaps, err := s.listGenerations()
	if err != nil {
		return nil, nil, err
	}
	// Remove abandoned temp files from an interrupted snapshot, delta,
	// manifest, or epoch write.
	for _, pattern := range []string{".tmp-snap-*", ".tmp-epoch-*"} {
		tmps, _ := filepath.Glob(filepath.Join(dir, pattern))
		for _, t := range tmps {
			lg.Printf("wal: removing abandoned temp file %s", t)
			_ = os.Remove(t)
		}
	}
	if err := s.loadEpoch(); err != nil {
		return nil, nil, err
	}
	deltas := s.listDeltaGens()
	walGens := s.listWALGens()
	walSet := make(map[uint64]bool, len(walGens))
	for _, g := range walGens {
		walSet[g] = true
	}

	// Choose the chain base: walk snapshot generations newest-first. An
	// incomplete snapshot (an interrupted write that still became visible —
	// possible on filesystems without atomic-rename durability) falls back
	// to an older generation; if nothing was ever built on it (no WAL, no
	// delta) it is removed outright, otherwise the WAL-continuity check
	// below decides whether the fallback loses anything. A corrupt snapshot
	// (flipped bits) hard-fails.
	var base *SnapshotData
	var baseGen uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		g := snaps[i]
		path := filepath.Join(dir, snapshotName(g))
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		data, err := DecodeSnapshot(path, raw)
		if err != nil {
			if IsIncomplete(err) {
				if !walSet[g] && !hasGenAbove(deltas, g) {
					// Nothing was ever written after this snapshot, so
					// nothing is lost by ignoring it.
					lg.Printf("wal: ignoring incomplete snapshot %s (%v)", path, err)
					_ = os.Remove(path)
					continue
				}
				lg.Printf("wal: snapshot %s incomplete (%v); falling back to an older base", path, err)
				continue
			}
			return nil, nil, err
		}
		base = data
		baseGen = g
		rec.SnapshotPath = path
		break
	}

	if base == nil {
		if len(snaps) > 0 {
			return nil, nil, fmt.Errorf("wal: %s holds %d snapshot file(s) but none is loadable", dir, len(snaps))
		}
		if len(deltas) > 0 {
			return nil, nil, fmt.Errorf("wal: %s holds %d delta file(s) but no base snapshot; refusing to guess at a base state", dir, len(deltas))
		}
		if leftover := s.walFiles(); len(leftover) > 0 {
			return nil, nil, fmt.Errorf("wal: %s holds WAL files %v but no snapshot; refusing to guess at a base state", dir, leftover)
		}
		rec.Gen = 0 // Initialize will move to generation 1
		rec.Duration = time.Since(start)
		return s, rec, nil
	}

	obs := cfg.Observer
	if obs != nil {
		obs.RecoveryBase(baseGen, base.DB)
	}

	// Apply the delta chain above the base, validating every link: each
	// delta's BaseGen must name the previous chain element. A torn tip
	// delta is dropped only when the retained logs still cover its content
	// (they always do when the crash interrupted the checkpoint that was
	// writing it — GC runs strictly after completion); anything else that
	// fails to decode is corruption.
	chain := []uint64{baseGen}
	maxWal := baseGen
	for _, g := range walGens {
		if g > maxWal {
			maxWal = g
		}
	}
	chainDeltas := gensAbove(deltas, baseGen)
	for idx, g := range chainDeltas {
		path := filepath.Join(dir, deltaName(g))
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		d, derr := DecodeDelta(path, raw)
		if derr != nil {
			if IsIncomplete(derr) && idx == len(chainDeltas)-1 {
				tip := chain[len(chain)-1]
				if walsCover(walSet, tip, maxWal) {
					lg.Printf("wal: dropping incomplete delta %s (%v) — its content is re-derivable from the retained logs", path, derr)
					_ = os.Remove(path)
					break
				}
				return nil, nil, &CorruptionError{File: path, Offset: 0, Record: 0,
					Detail: "incomplete delta is not covered by the retained logs; dropping it would lose data"}
			}
			if IsIncomplete(derr) {
				return nil, nil, &CorruptionError{File: path, Offset: 0, Record: 0,
					Detail: fmt.Sprintf("incomplete delta mid-chain (%v)", derr)}
			}
			return nil, nil, derr
		}
		if want := chain[len(chain)-1]; d.BaseGen != want {
			return nil, nil, &CorruptionError{File: path, Offset: 0, Record: 0,
				Detail: fmt.Sprintf("delta declares base generation %d, chain tip is %d", d.BaseGen, want)}
		}
		if err := ApplyDelta(base, d, obs); err != nil {
			return nil, nil, &CorruptionError{File: path, Offset: 0, Record: 0, Detail: err.Error()}
		}
		chain = append(chain, g)
		rec.DeltasApplied++
	}

	// The chain is applied: everything from here on — the WAL tail now,
	// live mutations later — is not covered by any checkpoint yet, so dirty
	// tracking starts exactly here.
	base.DB.EnableDirtyTracking()

	if m := readManifest(dir); m != nil && !gensEqual(m, chain) {
		lg.Printf("wal: manifest chain %v disagrees with derived chain %v; trusting the files", m, chain)
	}

	// Replay every log from the chain tip through the newest generation. A
	// generation gap, or a torn tail anywhere but the final log, means
	// records are missing from the middle of history — hard failure. (A
	// rotated log was synced before its successor accepted a single record,
	// so a mid-sequence torn tail can only be corruption.)
	tip := chain[len(chain)-1]
	lastCount := 0
	for g := tip; g <= maxWal; g++ {
		walPath := filepath.Join(dir, walName(g))
		if !walSet[g] && g < maxWal {
			return nil, nil, fmt.Errorf("wal: log generation %d missing while %s exists; refusing to skip a gap in history", g, walName(maxWal))
		}
		info, err := ReplayFile(walPath, func(r Record) error { return applyObserved(r, base, obs) })
		if err != nil {
			return nil, nil, err
		}
		if info.TornBytes > 0 && g < maxWal {
			return nil, nil, &CorruptionError{File: walPath, Offset: 0, Record: info.Records,
				Detail: fmt.Sprintf("torn tail in rotated log (%s); later generations exist", info.TornDetail)}
		}
		if info.TornBytes > 0 {
			lg.Printf("wal: truncated torn tail of %s: %d byte(s) dropped (%s) — last write did not survive the crash",
				walPath, info.TornBytes, info.TornDetail)
		}
		rec.WALRecords += info.Records
		rec.TornBytes += info.TornBytes
		lastCount = info.Records
	}

	w, err := openWriter(filepath.Join(dir, walName(maxWal)), cfg.Fsync, cfg.FsyncInterval)
	if err != nil {
		return nil, nil, err
	}
	w.setReplayed(int64(lastCount))
	w.OnAdvance(s.notifySubs)
	s.gen = maxWal
	s.w = w
	s.chain = chain
	// The chain tip is the last checkpoint: date LastCkpt from its mtime
	// (falling back to now) so a configured CheckpointEvery does not see a
	// zero time and fire an immediate checkpoint on every boot, and Stats
	// reports a truthful last_checkpoint after restart.
	s.lastCkpt = time.Now()
	tipPath := rec.SnapshotPath
	if len(chain) > 1 {
		tipPath = filepath.Join(dir, deltaName(tip))
	}
	if st, err := os.Stat(tipPath); err == nil {
		s.lastCkpt = st.ModTime()
	}
	s.gcChainLocked()
	rec.Data = base
	rec.Gen = maxWal
	rec.ChainDepth = len(chain)
	rec.Duration = time.Since(start)
	return s, rec, nil
}

// walsCover reports whether every log generation in [from, to] is present.
func walsCover(walSet map[uint64]bool, from, to uint64) bool {
	for g := from; g <= to; g++ {
		if !walSet[g] {
			return false
		}
	}
	return true
}

// hasGenAbove reports whether sorted gens contains an element > g.
func hasGenAbove(gens []uint64, g uint64) bool {
	return len(gensAbove(gens, g)) > 0
}

// gensAbove returns the suffix of sorted gens strictly above g.
func gensAbove(gens []uint64, g uint64) []uint64 {
	i := sort.Search(len(gens), func(i int) bool { return gens[i] > g })
	return gens[i:]
}

func gensEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Initialize seeds an empty directory: it writes the generation-1 snapshot
// of data and opens its WAL. Only valid after an Open that returned
// Recovered.Data == nil.
func (s *Store) Initialize(data *SnapshotData) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w != nil || s.gen != 0 {
		return fmt.Errorf("wal: store already initialized (generation %d)", s.gen)
	}
	if _, err := WriteSnapshot(s.dir, 1, data); err != nil {
		return err
	}
	w, err := openWriter(filepath.Join(s.dir, walName(1)), s.cfg.Fsync, s.cfg.FsyncInterval)
	if err != nil {
		return err
	}
	w.SetMetrics(s.metrics)
	w.OnAdvance(s.notifySubs)
	s.gen = 1
	s.w = w
	s.chain = []uint64{1}
	s.lastCkpt = time.Now()
	if data.DB != nil {
		// Everything after the seed snapshot belongs in the next
		// checkpoint's delta.
		data.DB.EnableDirtyTracking()
	}
	if err := writeManifest(s.dir, s.chain); err != nil {
		s.log.Printf("wal: cannot write manifest: %v", err)
	}
	return nil
}

// SetCommitGate installs (or, with nil, removes) the commit gate Append
// runs after each locally successful append. Safe to call concurrently
// with appends; an in-flight Append uses whichever gate it loads.
func (s *Store) SetCommitGate(g CommitGate) {
	if g == nil {
		s.commitGate.Store(nil)
		return
	}
	s.commitGate.Store(&g)
}

// Append logs one mutation record. With a commit gate installed, Append
// additionally blocks until the gate releases the record's position; a
// gate error is returned with the record already in the local log (see
// CommitGate).
func (s *Store) Append(r Record) error {
	return s.append(r.encode(make([]byte, 0, 64)))
}

// AppendRaw logs one already-encoded record payload verbatim — the
// follower's write-through path, which must keep its log byte-identical
// to the primary's.
func (s *Store) AppendRaw(payload []byte) error {
	return s.append(payload)
}

func (s *Store) append(payload []byte) error {
	s.mu.Lock()
	w := s.w
	gen := s.gen
	closed := s.closed
	fencedBy := s.fencedBy
	s.mu.Unlock()
	if closed || w == nil {
		return fmt.Errorf("wal: store is closed")
	}
	if fencedBy != 0 {
		// A deposed primary must never make another write durable: the
		// fence outranks even a caller that believes it is still primary.
		return fmt.Errorf("%w (deposed by epoch %d)", ErrFenced, fencedBy)
	}
	records, err := w.Append(payload)
	if err != nil {
		return err
	}
	if gp := s.commitGate.Load(); gp != nil {
		return (*gp)(gen, records)
	}
	return nil
}

// CheckpointHandle is an in-flight two-phase checkpoint: BeginCheckpoint
// rotated the log under the caller's mutation lock; exactly one of
// CompleteDelta, CompleteFull, or Abort finishes it off-lock.
type CheckpointHandle struct {
	s         *Store
	old       *Writer
	prevChain []uint64
	gen       uint64
	start     time.Time
}

// Gen returns the generation this checkpoint is creating.
func (h *CheckpointHandle) Gen() uint64 { return h.gen }

// PrevChain returns the checkpoint chain the rotation happened on top of.
func (h *CheckpointHandle) PrevChain() []uint64 {
	return append([]uint64(nil), h.prevChain...)
}

// BeginCheckpoint rotates the log to the next generation: it syncs the old
// log (so its durable frontier is final and a mid-sequence torn tail is
// provably corruption), opens the new generation's log, and swaps. This is
// the only part of a checkpoint that must run under the engine's mutation
// lock, and it is O(1) in database size — no snapshot bytes are written
// here. The caller then captures its dirty state under the same lock and
// completes the checkpoint off-lock via CompleteDelta or CompleteFull (or
// Abort, on a capture failure). A crash or failure between Begin and
// Complete leaves an extra log generation with no checkpoint, which
// recovery replays seamlessly.
func (s *Store) BeginCheckpoint() (*CheckpointHandle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.w == nil {
		return nil, fmt.Errorf("wal: store is closed")
	}
	start := time.Now()
	old := s.w
	oldGen := s.gen
	// Finalize the old log's durable frontier before its successor can
	// accept a record: recovery depends on rotated logs never having a
	// benign torn tail, and streamers depend on genEnds being final.
	if err := old.Sync(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnsyncedLog, err)
	}
	next := s.gen + 1
	nw, err := openWriter(filepath.Join(s.dir, walName(next)), s.cfg.Fsync, s.cfg.FsyncInterval)
	if err != nil {
		return nil, err
	}
	nw.SetMetrics(s.metrics)
	nw.OnAdvance(s.notifySubs)
	s.w = nw
	s.gen = next
	r, b := old.DurableFrontier()
	if s.genEnds == nil {
		s.genEnds = make(map[uint64]genEnd)
	}
	s.genEnds[oldGen] = genEnd{records: r, bytes: b}
	for g := range s.genEnds {
		if g+16 <= next {
			delete(s.genEnds, g)
		}
	}
	h := &CheckpointHandle{
		s:         s,
		old:       old,
		prevChain: append([]uint64(nil), s.chain...),
		gen:       next,
		start:     start,
	}
	s.notifySubs()
	return h, nil
}

// finishOld closes the rotated-out writer (idempotent). Its durable
// frontier was already finalized and recorded by BeginCheckpoint, so this
// is just resource release — safe off-lock.
func (h *CheckpointHandle) finishOld() {
	if h.old != nil {
		_ = h.old.Close()
		h.old = nil
	}
}

// Abort abandons a begun checkpoint without writing one. The rotation
// stands (the new log keeps accumulating); the next checkpoint simply
// covers a longer stretch of history.
func (h *CheckpointHandle) Abort() { h.finishOld() }

// CompleteDelta finishes a begun checkpoint as an incremental delta:
// d (the dirty state captured under the rotation lock) is stamped with the
// chain tip as its base, written durably, and appended to the chain. Runs
// entirely off the mutation lock. On failure the rotation stands and the
// caller merges the captured dirty set back (the delta's content stays
// covered by the retained logs either way).
func (s *Store) CompleteDelta(h *CheckpointHandle, d *DeltaData) error {
	h.finishOld()
	d.BaseGen = h.prevChain[len(h.prevChain)-1]
	_, n, err := WriteDelta(s.dir, h.gen, d)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chain = append(append([]uint64(nil), h.prevChain...), h.gen)
	s.deltaBytes += n
	s.checkpoints++
	s.lastCkpt = time.Now()
	if err := writeManifest(s.dir, s.chain); err != nil {
		s.log.Printf("wal: cannot write manifest: %v", err)
	}
	s.gcChainLocked()
	if s.metrics != nil {
		s.metrics.Checkpoints.Inc()
		s.metrics.CheckpointSecs.ObserveNanos(time.Since(h.start).Nanoseconds())
		s.metrics.DeltaCheckpoints.Inc()
		s.metrics.DeltaBytes.Add(uint64(n))
	}
	s.notifySubs()
	return nil
}

// CompleteFull finishes a begun checkpoint as a full snapshot (a chain
// compaction): data must be the database state at the rotation point —
// Synthesize builds exactly that from disk — and indexRaw, when non-nil,
// is persisted beside it as the generation's inverted-index snapshot. Runs
// entirely off the mutation lock.
func (s *Store) CompleteFull(h *CheckpointHandle, data *SnapshotData, indexRaw []byte) error {
	h.finishOld()
	if err := faultinject.Fire(faultinject.SiteSnapshotWrite); err != nil {
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	raw, err := EncodeSnapshot(data)
	if err != nil {
		return err
	}
	if _, err := WriteRawSnapshot(s.dir, h.gen, raw); err != nil {
		return err
	}
	if indexRaw != nil {
		if _, err := writeRawFile(s.dir, IndexSnapshotName(h.gen), indexRaw); err != nil {
			// The DB snapshot is already durable; a missing index file only
			// costs a rebuild on the next open.
			s.log.Printf("wal: cannot persist index snapshot for generation %d: %v", h.gen, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chain = []uint64{h.gen}
	s.fullBytes += int64(len(raw))
	s.checkpoints++
	s.lastCkpt = time.Now()
	if err := writeManifest(s.dir, s.chain); err != nil {
		s.log.Printf("wal: cannot write manifest: %v", err)
	}
	s.gcChainLocked()
	if s.metrics != nil {
		s.metrics.Checkpoints.Inc()
		s.metrics.CheckpointSecs.ObserveNanos(time.Since(h.start).Nanoseconds())
	}
	s.notifySubs()
	return nil
}

// Synthesize reconstructs, purely from disk plus the captured delta, the
// database state at h's rotation point: the previous chain decoded and
// applied, then d on top. The captured dirty set covers everything after
// the chain tip (including records in logs the chain tip never saw), so no
// WAL replay is needed. Used by chain compaction to build the full
// snapshot without serializing the live database under the mutation lock.
func (s *Store) Synthesize(h *CheckpointHandle, d *DeltaData) (*SnapshotData, error) {
	data, err := s.decodeChain(h.prevChain, nil)
	if err != nil {
		return nil, err
	}
	dd := *d
	dd.BaseGen = h.prevChain[len(h.prevChain)-1]
	if err := ApplyDelta(data, &dd, nil); err != nil {
		return nil, err
	}
	return data, nil
}

// decodeChain loads and applies a checkpoint chain from disk: the base
// snapshot, then each delta in order, validating every link.
func (s *Store) decodeChain(chain []uint64, obs RecoveryObserver) (*SnapshotData, error) {
	basePath := filepath.Join(s.dir, snapshotName(chain[0]))
	raw, err := os.ReadFile(basePath)
	if err != nil {
		return nil, err
	}
	data, err := DecodeSnapshot(basePath, raw)
	if err != nil {
		return nil, err
	}
	if obs != nil {
		obs.RecoveryBase(chain[0], data.DB)
	}
	for i := 1; i < len(chain); i++ {
		path := filepath.Join(s.dir, deltaName(chain[i]))
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		d, err := DecodeDelta(path, raw)
		if err != nil {
			return nil, err
		}
		if want := chain[i-1]; d.BaseGen != want {
			return nil, &CorruptionError{File: path, Offset: 0, Record: 0,
				Detail: fmt.Sprintf("delta declares base generation %d, chain predecessor is %d", d.BaseGen, want)}
		}
		if err := ApplyDelta(data, d, obs); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// Checkpoint writes data as the next full snapshot generation, rotates the
// WAL, and garbage-collects every older generation — the original
// monolithic protocol, retained for the follower's rotation mirror, the
// engine's shutdown checkpoint, and any caller that can afford the pause.
// The caller must guarantee no Append runs concurrently. On failure the
// previous chain stays fully intact (modulo the log rotation, which
// recovery absorbs).
func (s *Store) Checkpoint(data *SnapshotData) error {
	return s.CheckpointFull(data, nil)
}

// CheckpointFull is Checkpoint with an optional persisted-index snapshot
// written beside the new full snapshot.
func (s *Store) CheckpointFull(data *SnapshotData, indexRaw []byte) error {
	h, err := s.BeginCheckpoint()
	if err != nil {
		if errors.Is(err, ErrUnsyncedLog) {
			// The active writer is poisoned: heal by superseding the log
			// entirely — full snapshot first, rotation only once it is
			// durable, so no crash leaves recovery needing the bad log.
			if err := s.checkpointSupersede(data, indexRaw); err != nil {
				return err
			}
			if data.DB != nil && data.DB.DirtyTrackingEnabled() {
				data.DB.CaptureDirty()
			}
			return nil
		}
		return err
	}
	if err := s.CompleteFull(h, data, indexRaw); err != nil {
		h.Abort()
		return err
	}
	// A full checkpoint covers everything: whatever dirty state accumulated
	// (on a follower mirroring rotations, or the engine's shutdown path) is
	// now redundant. The no-concurrent-append guarantee makes this safe.
	if data.DB != nil && data.DB.DirtyTrackingEnabled() {
		data.DB.CaptureDirty()
	}
	return nil
}

// checkpointSupersede is the poisoned-writer healing path: the active log
// cannot be synced, so the full snapshot of data is written and made
// durable FIRST — superseding the log entirely — and only then does the
// rotation abandon it. This is the original monolithic checkpoint ordering;
// a crash at any point leaves either the old state (snapshot not yet
// visible) or the new base (from which recovery never touches the bad log).
func (s *Store) checkpointSupersede(data *SnapshotData, indexRaw []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.w == nil {
		return fmt.Errorf("wal: store is closed")
	}
	start := time.Now()
	if err := faultinject.Fire(faultinject.SiteSnapshotWrite); err != nil {
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	next := s.gen + 1
	raw, err := EncodeSnapshot(data)
	if err != nil {
		return err
	}
	if _, err := WriteRawSnapshot(s.dir, next, raw); err != nil {
		return err
	}
	if indexRaw != nil {
		if _, err := writeRawFile(s.dir, IndexSnapshotName(next), indexRaw); err != nil {
			s.log.Printf("wal: cannot persist index snapshot for generation %d: %v", next, err)
		}
	}
	nw, err := openWriter(filepath.Join(s.dir, walName(next)), s.cfg.Fsync, s.cfg.FsyncInterval)
	if err != nil {
		_ = os.Remove(filepath.Join(s.dir, snapshotName(next)))
		return err
	}
	nw.SetMetrics(s.metrics)
	nw.OnAdvance(s.notifySubs)
	old := s.w
	oldGen := s.gen
	_ = old.Close()
	r, b := old.DurableFrontier()
	if s.genEnds == nil {
		s.genEnds = make(map[uint64]genEnd)
	}
	s.genEnds[oldGen] = genEnd{records: r, bytes: b}
	s.w = nw
	s.gen = next
	s.chain = []uint64{next}
	s.fullBytes += int64(len(raw))
	s.checkpoints++
	s.lastCkpt = time.Now()
	if err := writeManifest(s.dir, s.chain); err != nil {
		s.log.Printf("wal: cannot write manifest: %v", err)
	}
	s.gcChainLocked()
	if s.metrics != nil {
		s.metrics.Checkpoints.Inc()
		s.metrics.CheckpointSecs.ObserveNanos(time.Since(start).Nanoseconds())
	}
	s.notifySubs()
	return nil
}

// InstallSnapshot makes raw (an already-encoded snapshot, as streamed from
// a replication primary) the store's entire state at generation gen: the
// snapshot is written durably, a fresh WAL is opened for gen, and every
// other generation's files are removed. This is the follower's bootstrap
// and re-bootstrap path — unlike Checkpoint, the generation number comes
// from the stream (it may jump forward past GC'd generations, or even
// backward after a stale-primary restart), so alignment with the primary's
// numbering is preserved. The caller must guarantee no Append runs
// concurrently.
func (s *Store) InstallSnapshot(gen uint64, raw []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: store is closed")
	}
	if gen == 0 {
		return fmt.Errorf("wal: cannot install snapshot at generation 0")
	}
	if _, err := WriteRawSnapshot(s.dir, gen, raw); err != nil {
		return err
	}
	// A WAL for this generation may already exist — a deposed primary
	// rejoining at the same generation number carries a diverged, unacked
	// suffix in it. The writer opens O_APPEND, so the stale file must go:
	// the installed snapshot plus the primary's re-streamed records are the
	// whole truth from here on.
	if err := os.Remove(filepath.Join(s.dir, walName(gen))); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("wal: install snapshot: removing stale log: %w", err)
	}
	nw, err := openWriter(filepath.Join(s.dir, walName(gen)), s.cfg.Fsync, s.cfg.FsyncInterval)
	if err != nil {
		_ = os.Remove(filepath.Join(s.dir, snapshotName(gen)))
		return err
	}
	nw.SetMetrics(s.metrics)
	nw.OnAdvance(s.notifySubs)
	if s.w != nil {
		_ = s.w.Close()
	}
	s.w = nw
	s.gen = gen
	s.chain = []uint64{gen}
	s.lastCkpt = time.Now()
	s.genEnds = nil
	if err := writeManifest(s.dir, s.chain); err != nil {
		s.log.Printf("wal: cannot write manifest: %v", err)
	}
	// Remove every other generation — including newer ones a stale-primary
	// re-bootstrap would otherwise leave for recovery to prefer, and any
	// delta or index files (the installed snapshot is a full base).
	entries, err := os.ReadDir(s.dir)
	if err == nil {
		for _, e := range entries {
			name := e.Name()
			var g uint64
			switch {
			case parseGen(name, "snap-", ".snap", &g), parseGen(name, "wal-", ".log", &g),
				parseGen(name, "delta-", ".dlt", &g), parseGen(name, "index-", ".pidx", &g):
				if g != gen || strings.HasPrefix(name, "delta-") || strings.HasPrefix(name, "index-") {
					if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
						s.log.Printf("wal: install snapshot: cannot remove %s: %v", name, err)
					}
				}
			}
		}
	}
	s.notifySubs()
	return nil
}

// gcChainLocked removes every checkpoint or log file the live chain no
// longer needs: snapshots and deltas outside the chain, logs below the
// chain tip, and index snapshots for any generation but the chain base.
func (s *Store) gcChainLocked() {
	if len(s.chain) == 0 {
		return
	}
	inChain := make(map[uint64]bool, len(s.chain))
	for _, g := range s.chain {
		inChain[g] = true
	}
	tip := s.chain[len(s.chain)-1]
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		var g uint64
		drop := false
		switch {
		case parseGen(name, "snap-", ".snap", &g), parseGen(name, "delta-", ".dlt", &g):
			drop = !inChain[g]
		case parseGen(name, "wal-", ".log", &g):
			drop = g < tip
		case parseGen(name, "index-", ".pidx", &g):
			drop = g != s.chain[0]
		}
		if drop {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				s.log.Printf("wal: gc: cannot remove %s: %v", name, err)
			}
		}
	}
}

// FlattenedSnapshot returns full snapshot bytes for the state at the start
// of the active generation — what a bootstrapping follower must install so
// the primary can stream the active log's records on top. When the chain
// is a single full snapshot at the active generation this is a plain file
// read; otherwise the chain is decoded and the intermediate logs replayed
// in memory (the live files are never modified), and the result re-encoded.
// A concurrent checkpoint can GC chain files mid-read; the read retries on
// a fresh chain.
func (s *Store) FlattenedSnapshot() (uint64, []byte, error) {
	const retries = 5
	var lastErr error
	for attempt := 0; attempt < retries; attempt++ {
		s.mu.Lock()
		gen := s.gen
		chain := append([]uint64(nil), s.chain...)
		s.mu.Unlock()
		if len(chain) == 0 {
			return 0, nil, fmt.Errorf("wal: store not initialized")
		}
		if len(chain) == 1 && chain[0] == gen {
			raw, err := os.ReadFile(filepath.Join(s.dir, snapshotName(gen)))
			if err == nil {
				return gen, raw, nil
			}
			if !os.IsNotExist(err) {
				return 0, nil, err
			}
			lastErr = err
			continue // checkpoint raced us; re-read the chain
		}
		data, err := s.decodeChain(chain, nil)
		if err != nil {
			if os.IsNotExist(err) {
				lastErr = err
				continue
			}
			return 0, nil, err
		}
		// Replay the logs between the chain tip and the active generation.
		tip := chain[len(chain)-1]
		replayErr := error(nil)
		for g := tip; g < gen; g++ {
			raw, err := os.ReadFile(filepath.Join(s.dir, walName(g)))
			if err != nil {
				if os.IsNotExist(err) {
					// Rotated logs are only GC'd when the chain advances past
					// them; a missing one means we raced a checkpoint.
					replayErr = err
					break
				}
				return 0, nil, err
			}
			info, err := ReplayBytes(raw, func(r Record) error { return r.apply(data) })
			if err != nil {
				return 0, nil, err
			}
			if info.TornBytes > 0 {
				return 0, nil, &CorruptionError{File: filepath.Join(s.dir, walName(g)), Offset: 0, Record: info.Records,
					Detail: fmt.Sprintf("torn tail in rotated log (%s)", info.TornDetail)}
			}
		}
		if replayErr != nil {
			lastErr = replayErr
			continue
		}
		raw, err := EncodeSnapshot(data)
		if err != nil {
			return 0, nil, err
		}
		return gen, raw, nil
	}
	return 0, nil, fmt.Errorf("wal: flattened snapshot kept racing checkpoints: %w", lastErr)
}

// Sync forces the active log to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	w := s.w
	s.mu.Unlock()
	if w == nil {
		return nil
	}
	return w.Sync()
}

// Close flushes and closes the active log. The store refuses further
// appends and checkpoints afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.w == nil {
		return nil
	}
	err := s.w.Close()
	r, b := s.w.DurableFrontier()
	if s.genEnds == nil {
		s.genEnds = make(map[uint64]genEnd)
	}
	s.genEnds[s.gen] = genEnd{records: r, bytes: b}
	s.w = nil
	s.notifySubs()
	return err
}

// SetMetrics wires instruments into the store and its active writer.
func (s *Store) SetMetrics(m *Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = m
	if s.w != nil {
		s.w.SetMetrics(m)
	}
}

// Stats snapshots the store's counters.
type Stats struct {
	Dir         string    `json:"dir"`
	Fsync       string    `json:"fsync"`
	Generation  uint64    `json:"generation"`
	WALBytes    int64     `json:"wal_bytes"`
	WALRecords  int64     `json:"wal_records"`
	Checkpoints uint64    `json:"checkpoints"`
	LastCkpt    time.Time `json:"last_checkpoint"`
	// ChainDepth is the live checkpoint chain length (1 = just the full
	// base snapshot).
	ChainDepth int `json:"chain_depth"`
	// DeltaBytes / FullBytes are cumulative checkpoint bytes written by
	// kind since the store opened.
	DeltaBytes int64 `json:"delta_bytes_written"`
	FullBytes  int64 `json:"full_bytes_written"`
}

// Stats returns the store's current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Dir:         s.dir,
		Fsync:       s.cfg.Fsync.String(),
		Generation:  s.gen,
		Checkpoints: s.checkpoints,
		LastCkpt:    s.lastCkpt,
		ChainDepth:  len(s.chain),
		DeltaBytes:  s.deltaBytes,
		FullBytes:   s.fullBytes,
	}
	if s.w != nil {
		st.WALBytes = s.w.Size()
		st.WALRecords = s.w.Records()
	}
	return st
}

// LogSize returns the active WAL's size in bytes (0 when closed).
func (s *Store) LogSize() int64 {
	s.mu.Lock()
	w := s.w
	s.mu.Unlock()
	if w == nil {
		return 0
	}
	return w.Size()
}

// Generation returns the active log generation.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Chain returns the live checkpoint chain generations (base first).
func (s *Store) Chain() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.chain...)
}

// ChainDepth returns the live checkpoint chain length.
func (s *Store) ChainDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.chain)
}

// ChainDeltaBytes returns the total on-disk size of the delta files in the
// live chain — the input to compaction-by-bytes policies. A file a
// concurrent compaction already removed counts as zero.
func (s *Store) ChainDeltaBytes() int64 {
	s.mu.Lock()
	chain := append([]uint64(nil), s.chain...)
	s.mu.Unlock()
	var total int64
	for i := 1; i < len(chain); i++ {
		if st, err := os.Stat(filepath.Join(s.dir, deltaName(chain[i]))); err == nil {
			total += st.Size()
		}
	}
	return total
}

// Frontier is the durable replication frontier: every record of generation
// Gen below Records (occupying Bytes bytes of its log) is safe to stream
// to a follower.
type Frontier struct {
	Gen     uint64
	Records int64
	Bytes   int64
}

// Frontier returns the current durable frontier. After Close it reports
// the final frontier of the last generation.
func (s *Store) Frontier() Frontier {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		if end, ok := s.genEnds[s.gen]; ok {
			return Frontier{Gen: s.gen, Records: end.records, Bytes: end.bytes}
		}
		return Frontier{Gen: s.gen}
	}
	r, b := s.w.DurableFrontier()
	return Frontier{Gen: s.gen, Records: r, Bytes: b}
}

// GenEnd returns the final durable record count of a rotated generation,
// or ok=false when gen is still active or rotated out of memory.
func (s *Store) GenEnd(gen uint64) (records int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen == s.gen && s.w != nil {
		return 0, false
	}
	end, ok := s.genEnds[gen]
	return end.records, ok
}

// Subscribe registers for durable-frontier advances: the returned channel
// receives a coalesced signal whenever the frontier moves or the
// generation rotates. The caller re-reads Frontier after each signal and
// must call cancel when done.
func (s *Store) Subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	s.subMu.Lock()
	if s.subs == nil {
		s.subs = make(map[int]chan struct{})
	}
	id := s.subID
	s.subID++
	s.subs[id] = ch
	s.subMu.Unlock()
	cancel := func() {
		s.subMu.Lock()
		delete(s.subs, id)
		s.subMu.Unlock()
	}
	return ch, cancel
}

// notifySubs wakes every subscriber (non-blocking: a pending signal
// coalesces). Fired from writer advance hooks, rotation, and close.
func (s *Store) notifySubs() {
	s.subMu.Lock()
	for _, ch := range s.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	s.subMu.Unlock()
}

// SnapshotPath returns the active generation and the path its full
// snapshot would live at. With delta checkpointing the file only exists
// when the chain is a single full snapshot at the active generation;
// callers that need guaranteed-loadable full bytes use FlattenedSnapshot.
func (s *Store) SnapshotPath() (uint64, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen, filepath.Join(s.dir, snapshotName(s.gen))
}

// IndexSnapshotPath returns the path of the persisted-index snapshot for
// the chain's base generation, and that generation.
func (s *Store) IndexSnapshotPath(gen uint64) string {
	return filepath.Join(s.dir, IndexSnapshotName(gen))
}

// WALPath returns the log file path of generation gen. The file may have
// been garbage-collected; callers handle open failure.
func (s *Store) WALPath(gen uint64) string {
	return filepath.Join(s.dir, walName(gen))
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// listGenerations returns the snapshot generations present, ascending.
func (s *Store) listGenerations() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		var g uint64
		if parseGen(e.Name(), "snap-", ".snap", &g) {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// listDeltaGens returns the delta generations present, ascending.
func (s *Store) listDeltaGens() []uint64 {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, e := range entries {
		var g uint64
		if parseGen(e.Name(), "delta-", ".dlt", &g) {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// listWALGens returns the log generations present, ascending.
func (s *Store) listWALGens() []uint64 {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, e := range entries {
		var g uint64
		if parseGen(e.Name(), "wal-", ".log", &g) {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// walFiles lists the WAL file names present, sorted.
func (s *Store) walFiles() []string {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		var g uint64
		if parseGen(e.Name(), "wal-", ".log", &g) {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// parseGen extracts the 16-hex-digit generation from prefix<gen>suffix.
func parseGen(name, prefix, suffix string, out *uint64) bool {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return false
	}
	var g uint64
	for i := 0; i < 16; i++ {
		c := hex[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return false
		}
		g = g<<4 | d
	}
	*out = g
	return true
}

func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

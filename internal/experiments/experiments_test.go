package experiments

import (
	"sort"
	"strings"
	"testing"
	"time"

	"precis/internal/core"
	"precis/internal/dataset"
	"precis/internal/invidx"
	"precis/internal/sqlx"
	"precis/internal/storage"
)

// Small configurations keep the experiment tests fast while still
// exercising the full measurement paths.

func TestFigure7Shape(t *testing.T) {
	cfg := DefaultF7Config()
	cfg.Degrees = []int{5, 20, 50}
	cfg.WeightSets = 3
	cfg.SeedRels = 3
	cfg.Graph.Relations = 8
	s, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points = %+v", s.Points)
	}
	for _, p := range s.Points {
		if p.Runs != 9 {
			t.Errorf("d=%d runs = %d, want 9", p.X, p.Runs)
		}
		if p.Mean <= 0 {
			t.Errorf("d=%d mean = %v", p.X, p.Mean)
		}
	}
	if !strings.Contains(s.String(), "x=5") {
		t.Errorf("String = %q", s.String())
	}
}

func TestFigure8LinearInCR(t *testing.T) {
	cfg := DefaultF8Config()
	cfg.Cardinalities = []int{10, 40, 80}
	cfg.Sets = 2
	cfg.SeedSets = 2
	cfg.Chain.RowsPerRel = 100
	s, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points = %+v", s.Points)
	}
	for _, p := range s.Points {
		if p.Runs != 16 || p.Mean <= 0 {
			t.Errorf("point %+v", p)
		}
	}
	// The paper's claim is that time grows near-linearly with c_R because
	// the physical work does. Wall time is too noisy for a unit test on a
	// shared machine, so assert the deterministic driver instead: tuples
	// retrieved (and hence index+fetch work) grow with c_R.
	w, err := buildChain(dataset.ChainConfig{Relations: 4, RowsPerRel: 100, Fanout: 4, Seed: 1, UniformRows: false})
	if err != nil {
		t.Fatal(err)
	}
	ids := w.ids[w.rels[0]][:10]
	var prevReads, prevTuples int
	for _, cR := range []int{10, 40, 80} {
		_, stats, err := w.runGeneration(w.rels[0], ids, cR, core.StrategyNaive)
		if err != nil {
			t.Fatal(err)
		}
		if stats.SQL.TupleReads <= prevReads {
			t.Errorf("cR=%d: TupleReads %d did not grow past %d", cR, stats.SQL.TupleReads, prevReads)
		}
		if stats.TotalTuples <= prevTuples {
			t.Errorf("cR=%d: TotalTuples %d did not grow past %d", cR, stats.TotalTuples, prevTuples)
		}
		prevReads, prevTuples = stats.SQL.TupleReads, stats.TotalTuples
	}
}

func TestFigure9RoundRobinSlower(t *testing.T) {
	cfg := DefaultF9Config()
	cfg.Relations = []int{2, 4}
	cfg.Sets = 2
	cfg.SeedSets = 2
	naive, rr, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(naive.Points) != 2 || len(rr.Points) != 2 {
		t.Fatalf("points: %+v / %+v", naive.Points, rr.Points)
	}
	// The paper's claim: Round-Robin is slower than NaïveQ at each n_R
	// because it issues one scan per driving tuple plus one fetch per
	// retrieved tuple. Assert the deterministic driver — query counts —
	// rather than noisy wall time.
	for _, nR := range cfg.Relations {
		w, err := buildChain(dataset.ChainConfig{Relations: nR, RowsPerRel: 50, Fanout: 2, Seed: 1, UniformRows: false})
		if err != nil {
			t.Fatal(err)
		}
		ids := w.ids[w.rels[0]][:5]
		_, sn, err := w.runGeneration(w.rels[0], ids, cfg.CR, core.StrategyNaive)
		if err != nil {
			t.Fatal(err)
		}
		_, sr, err := w.runGeneration(w.rels[0], ids, cfg.CR, core.StrategyRoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		if nR > 1 && sr.Queries <= sn.Queries {
			t.Errorf("nR=%d: roundrobin queries %d <= naive %d", nR, sr.Queries, sn.Queries)
		}
	}
}

func TestCostModelValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based in -short mode")
	}
	cfg := DefaultF8Config()
	cfg.Cardinalities = []int{10, 50, 90}
	cfg.Chain.RowsPerRel = 100
	report, err := CostModel(cfg, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 3 {
		t.Fatalf("rows = %+v", report.Rows)
	}
	for _, row := range report.Rows {
		if row.Predicted <= 0 || row.Measured <= 0 {
			t.Errorf("degenerate row %+v", row)
		}
	}
	// Predictions scale with c_R (the stats they derive from are
	// deterministic).
	if report.Rows[2].Predicted <= report.Rows[0].Predicted {
		t.Errorf("prediction not increasing: %+v", report.Rows)
	}
	if report.SolvedCR <= 0 {
		t.Errorf("solved c_R = %d", report.SolvedCR)
	}
}

func TestRunningExampleReport(t *testing.T) {
	report, err := RunningExample()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ACTOR", "CAST", "DIRECTOR", "GENRE", "MOVIE"}
	if strings.Join(report.SchemaRelations, ",") != strings.Join(want, ",") {
		t.Errorf("relations = %v", report.SchemaRelations)
	}
	if report.MovieInDegree != 2 {
		t.Errorf("MOVIE in-degree = %d", report.MovieInDegree)
	}
	for rel, n := range report.TuplesPerRel {
		if n > 3 {
			t.Errorf("%s tuples = %d > 3", rel, n)
		}
	}
	if !report.SubDatabaseOK {
		t.Error("sub-database check failed")
	}
	if !strings.Contains(report.Narrative, "Woody Allen was born on December 1, 1935") {
		t.Errorf("narrative = %q", report.Narrative)
	}
}

func TestBaselinesReport(t *testing.T) {
	report, err := Baselines(300, 10)
	if err != nil {
		t.Fatal(err)
	}
	if report.Queries != 10 {
		t.Errorf("queries = %d", report.Queries)
	}
	// Précis answers are richer: multiple relations vs flat matches.
	if report.PrecisRelations < 2 {
		t.Errorf("précis relations = %v", report.PrecisRelations)
	}
	if report.PrecisTuples <= report.AttrPairMatches {
		t.Errorf("précis tuples (%v) should exceed attribute-pair matches (%v)",
			report.PrecisTuples, report.AttrPairMatches)
	}
	if report.AttrPairMatches == 0 {
		t.Error("attribute-pair baseline found nothing")
	}
}

func TestAblations(t *testing.T) {
	report, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if report.PruningOn <= 0 || report.PruningOff <= 0 {
		t.Errorf("pruning times: %+v", report)
	}
	// Postponement correctness: 2 children with, 1 without.
	if report.PostponedChildren != 2 || report.EagerChildren != 1 {
		t.Errorf("postponement: %d vs %d, want 2 vs 1",
			report.PostponedChildren, report.EagerChildren)
	}
	// Weight-ordered joins fill the high-weight target at least as much.
	if report.WeightOrderMovieTuples < report.FIFOMovieTuples {
		t.Errorf("join order: weight=%d fifo=%d",
			report.WeightOrderMovieTuples, report.FIFOMovieTuples)
	}
}

// TestPaperScaleSmoke builds the full 34,000-film synthetic database (the
// paper's IMDB snapshot scale) and answers a précis query end to end,
// demonstrating laptop-scale viability of the whole stack.
func TestPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale build in -short mode")
	}
	cfg := dataset.PaperScaleSyntheticConfig()
	start := time.Now()
	db, err := dataset.SyntheticMovies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buildTime := time.Since(start)
	if db.Relation("MOVIE").Len() != 34000 {
		t.Fatalf("films = %d", db.Relation("MOVIE").Len())
	}
	g, err := dataset.PaperGraph(db)
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	ix := invidx.New(db)
	indexTime := time.Since(start)

	dname := db.Relation("DIRECTOR").Tuples()[0].Values[1].AsString()
	occs := ix.Lookup(dname)
	if len(occs) == 0 {
		t.Fatal("no occurrences at paper scale")
	}
	seeds := make(map[string][]storage.TupleID)
	var seedRels []string
	for _, o := range occs {
		seeds[o.Relation] = append(seeds[o.Relation], o.TupleIDs...)
		seedRels = append(seedRels, o.Relation)
	}
	sort.Strings(seedRels)
	rs, err := core.GenerateSchema(g, seedRels, core.MinPathWeight(0.5))
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	rd, err := core.GenerateDatabase(sqlx.NewEngine(db), rs, seeds, core.MaxTuplesPerRelation(20), core.StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	queryTime := time.Since(start)
	if err := storage.VerifySubDatabase(db, rd.DB); err != nil {
		t.Fatal(err)
	}
	if rd.DB.TotalTuples() == 0 {
		t.Fatal("empty précis at paper scale")
	}
	t.Logf("34k films: build=%v index=%v (%d tokens) query=%v (%d tuples)",
		buildTime, indexTime, ix.NumTokens(), queryTime, rd.DB.TotalTuples())
	// The whole pipeline must be interactive-grade: generation well under
	// a second even on a shared CI machine.
	if queryTime > 2*time.Second {
		t.Errorf("query took %v at paper scale", queryTime)
	}
}

// TestDegradationReport runs the deadline sweep small and checks its shape:
// the unbounded row is complete, an already-hopeless deadline is partial
// but never empty, and tighter deadlines never buy more tuples than the
// unbounded answer.
func TestDegradationReport(t *testing.T) {
	report, err := Degradation(DegradationConfig{
		Films:     300,
		Deadlines: []time.Duration{time.Microsecond, 0},
		Runs:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(report.Points))
	}
	tight, unbounded := report.Points[0], report.Points[1]
	if tight.PartialRate != 1 {
		t.Fatalf("1µs deadline not always partial: rate=%v", tight.PartialRate)
	}
	if tight.Tuples == 0 {
		t.Fatal("deadline answer empty — seeds must survive")
	}
	if unbounded.PartialRate != 0 {
		t.Fatalf("unbounded run marked partial: %+v", unbounded)
	}
	if tight.Tuples > unbounded.Tuples {
		t.Fatalf("deadline answer (%d tuples) larger than unbounded (%d)", tight.Tuples, unbounded.Tuples)
	}
	if s := report.String(); !strings.Contains(s, "unbounded") || !strings.Contains(s, "deadline") {
		t.Fatalf("report rendering: %s", s)
	}
}

package experiments

import (
	"fmt"
	"time"

	"precis"
	"precis/internal/dataset"
	"precis/internal/storage"
)

// ParallelConfig scales the parallel-speedup experiment: a synthetic
// database large enough that result-database generation dominates, queried
// for a popular director (the zipf skew concentrates films on the first
// directors, so the précis spans hundreds of tuples).
type ParallelConfig struct {
	Films   int
	Workers []int // pool sizes to sweep; 1 is the serial baseline
	Runs    int   // timed runs per pool size (median reported)
}

// DefaultParallelConfig sweeps the pool sizes the issue's acceptance
// criteria cite.
func DefaultParallelConfig() ParallelConfig {
	return ParallelConfig{Films: 2000, Workers: []int{1, 2, 4, 8, 16}, Runs: 5}
}

// ParallelPoint is one pool size's result.
type ParallelPoint struct {
	Workers int
	Median  time.Duration
	Speedup float64 // serial median / this median
}

// ParallelReport is the output of Parallel.
type ParallelReport struct {
	Films  int
	Query  string
	Tuples int // tuples in the answer (identical across pool sizes)
	Points []ParallelPoint
}

func (r ParallelReport) String() string {
	s := fmt.Sprintf("Parallel query execution (%d films, q=%q, %d answer tuples)\n",
		r.Films, r.Query, r.Tuples)
	for _, p := range r.Points {
		s += fmt.Sprintf("  workers=%-3d median=%-12v speedup=%.2fx\n", p.Workers, p.Median, p.Speedup)
	}
	return s
}

// popularQuery builds a synthetic-movies engine and returns it with the
// name of its most prolific director (the zipf head), whose précis is the
// heaviest answer the dataset can produce.
func popularQuery(films int) (*precis.Engine, string, error) {
	cfg := dataset.DefaultSyntheticConfig()
	cfg.Films = films
	db, err := dataset.SyntheticMovies(cfg)
	if err != nil {
		return nil, "", err
	}
	g, err := dataset.PaperGraph(db)
	if err != nil {
		return nil, "", err
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		return nil, "", err
	}
	eng, err := precis.New(db, g)
	if err != nil {
		return nil, "", err
	}
	// Count films per director and pick the head of the zipf curve.
	movies := db.Relation("MOVIE")
	di := movies.Schema().ColumnIndex("did")
	counts := make(map[string]int)
	movies.Scan(func(t storage.Tuple) bool {
		counts[t.Values[di].String()]++
		return true
	})
	best, bestN := "", -1
	directors := db.Relation("DIRECTOR")
	did := directors.Schema().ColumnIndex("did")
	dn := directors.Schema().ColumnIndex("dname")
	directors.Scan(func(t storage.Tuple) bool {
		if n := counts[t.Values[did].String()]; n > bestN {
			bestN = n
			best = t.Values[dn].AsString()
		}
		return true
	})
	return eng, best, nil
}

// parallelOptions is the workload every pool size runs: round-robin
// retrieval over a wide, deep précis with the narrative skipped so timings
// isolate generation.
func parallelOptions(workers int) precis.Options {
	return precis.Options{
		Degree:        precis.MinPathWeight(0.05),
		Cardinality:   precis.MaxTuplesPerRelation(150),
		Strategy:      precis.StrategyRoundRobin,
		SkipNarrative: true,
		Parallelism:   workers,
	}
}

// Parallel measures the same précis query across worker-pool sizes and
// reports the speedup over the serial path. Answers are verified to have
// identical tuple counts — parallelism must only change latency.
func Parallel(cfg ParallelConfig) (ParallelReport, error) {
	var report ParallelReport
	report.Films = cfg.Films
	eng, q, err := popularQuery(cfg.Films)
	if err != nil {
		return report, err
	}
	report.Query = q
	if cfg.Runs < 1 {
		cfg.Runs = 1
	}
	serial := time.Duration(0)
	for _, w := range cfg.Workers {
		opts := parallelOptions(w)
		// Warm-up run, also the answer-shape check.
		ans, err := eng.QueryString(q, opts)
		if err != nil {
			return report, err
		}
		tuples := ans.Database.TotalTuples()
		if report.Tuples == 0 {
			report.Tuples = tuples
		} else if tuples != report.Tuples {
			return report, fmt.Errorf("parallel: workers=%d produced %d tuples, serial produced %d",
				w, tuples, report.Tuples)
		}
		durs := make([]time.Duration, 0, cfg.Runs)
		for r := 0; r < cfg.Runs; r++ {
			start := time.Now()
			if _, err := eng.QueryString(q, opts); err != nil {
				return report, err
			}
			durs = append(durs, time.Since(start))
		}
		med := median(durs)
		if serial == 0 {
			serial = med
		}
		sp := 0.0
		if med > 0 {
			sp = float64(serial) / float64(med)
		}
		report.Points = append(report.Points, ParallelPoint{Workers: w, Median: med, Speedup: sp})
	}
	return report, nil
}

// CacheReport contrasts cold query latency against answer-cache hits.
type CacheReport struct {
	Films   int
	Query   string
	Cold    time.Duration // median uncached latency
	Hot     time.Duration // median cache-hit latency
	Speedup float64
	Stats   precis.CacheStats
}

func (r CacheReport) String() string {
	return fmt.Sprintf(
		"Answer cache (%d films, q=%q)\n  cold=%-12v hot=%-12v speedup=%.0fx  (hits=%d misses=%d entries=%d)\n",
		r.Films, r.Query, r.Cold, r.Hot, r.Speedup, r.Stats.Hits, r.Stats.Misses, r.Stats.Entries)
}

// Cache measures the answer cache: cold medians with the cache disabled,
// then hot medians on a warmed cache.
func Cache(films, runs int) (CacheReport, error) {
	var report CacheReport
	report.Films = films
	eng, q, err := popularQuery(films)
	if err != nil {
		return report, err
	}
	report.Query = q
	if runs < 1 {
		runs = 1
	}
	opts := parallelOptions(0)

	cold := make([]time.Duration, 0, runs)
	for r := 0; r < runs; r++ {
		start := time.Now()
		if _, err := eng.QueryString(q, opts); err != nil {
			return report, err
		}
		cold = append(cold, time.Since(start))
	}
	report.Cold = median(cold)

	eng.EnableCache(precis.CacheConfig{MaxEntries: 64})
	if _, err := eng.QueryString(q, opts); err != nil { // warm the entry
		return report, err
	}
	hot := make([]time.Duration, 0, runs)
	for r := 0; r < runs; r++ {
		start := time.Now()
		if _, err := eng.QueryString(q, opts); err != nil {
			return report, err
		}
		hot = append(hot, time.Since(start))
	}
	report.Hot = median(hot)
	if report.Hot > 0 {
		report.Speedup = float64(report.Cold) / float64(report.Hot)
	}
	report.Stats = eng.CacheStats()
	return report, nil
}

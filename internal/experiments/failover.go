package experiments

import (
	"errors"
	"fmt"
	"net"
	"os"
	"time"

	"precis"
	"precis/internal/repl"
)

// FailoverBenchConfig measures mean time to recovery after a primary
// kill: a synchronous pair runs with supervised auto-failover armed on
// the follower, the primary is killed, and the clock is split into
// detection (kill → the supervisor declares the primary dead), promotion
// (declaration → the follower is a writable primary at the next epoch)
// and first answer (kill → the first mutation accepted by the new
// primary). The heartbeat timeout is the knob: detection can never beat
// it, so the sweep shows how close the implementation gets to that floor.
type FailoverBenchConfig struct {
	Films             int             // synthetic dataset size behind the pair
	Mutations         int             // acked writes applied before the kill
	HeartbeatTimeouts []time.Duration // detector settings to sweep
	PollEvery         time.Duration   // detector sampling interval
	Trials            int             // kills per timeout setting
}

// DefaultFailoverBenchConfig sweeps sub-second detector settings — the
// range where the detection floor and the promotion cost are the same
// order of magnitude.
func DefaultFailoverBenchConfig() FailoverBenchConfig {
	return FailoverBenchConfig{
		Films:             500,
		Mutations:         100,
		HeartbeatTimeouts: []time.Duration{100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond},
		PollEvery:         5 * time.Millisecond,
		Trials:            3,
	}
}

// FailoverPoint is the mean recovery breakdown for one detector setting.
type FailoverPoint struct {
	HeartbeatTimeout time.Duration
	Trials           int
	Detection        time.Duration // kill → primary declared dead (mean)
	Promotion        time.Duration // declaration → writable at the next epoch (mean)
	FirstAnswer      time.Duration // kill → first accepted mutation (mean MTTR)
	MaxFirstAnswer   time.Duration // worst trial
}

// FailoverReport is the output of FailoverBench.
type FailoverReport struct {
	Mutations int
	Points    []FailoverPoint
}

func (r FailoverReport) String() string {
	s := fmt.Sprintf("Failover MTTR vs heartbeat timeout (primary killed after %d acked writes, loopback TCP)\n", r.Mutations)
	for _, p := range r.Points {
		s += fmt.Sprintf("  timeout=%-6v trials=%d detection=%-10v promotion=%-10v first_answer=%-10v worst=%v\n",
			p.HeartbeatTimeout, p.Trials,
			p.Detection.Round(time.Millisecond), p.Promotion.Round(time.Microsecond),
			p.FirstAnswer.Round(time.Millisecond), p.MaxFirstAnswer.Round(time.Millisecond))
	}
	return s
}

// FailoverBench runs Trials kill-and-promote cycles per detector setting
// and reports the mean recovery breakdown.
func FailoverBench(cfg FailoverBenchConfig) (FailoverReport, error) {
	report := FailoverReport{Mutations: cfg.Mutations}
	for _, timeout := range cfg.HeartbeatTimeouts {
		point := FailoverPoint{HeartbeatTimeout: timeout, Trials: cfg.Trials}
		var detect, promote, first time.Duration
		for i := 0; i < cfg.Trials; i++ {
			d, p, f, err := failoverTrial(cfg, timeout)
			if err != nil {
				return report, fmt.Errorf("timeout %v trial %d: %w", timeout, i, err)
			}
			detect += d
			promote += p
			first += f
			if f > point.MaxFirstAnswer {
				point.MaxFirstAnswer = f
			}
		}
		n := time.Duration(cfg.Trials)
		point.Detection, point.Promotion, point.FirstAnswer = detect/n, promote/n, first/n
		report.Points = append(report.Points, point)
	}
	return report, nil
}

// failoverTrial runs one kill: build a converged synchronous pair, arm
// auto-failover, kill the primary, and time the three recovery phases.
func failoverTrial(cfg FailoverBenchConfig, timeout time.Duration) (detect, promote, first time.Duration, err error) {
	pdir, err := os.MkdirTemp("", "precis-failover-primary-")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(pdir)
	fdir, err := os.MkdirTemp("", "precis-failover-follower-")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(fdir)

	db, g, err := syntheticParts(cfg.Films)
	if err != nil {
		return 0, 0, 0, err
	}
	pcfg := benchPersistConfig(pdir, precis.FsyncNever)
	primary, err := precis.Open(db, g, pcfg)
	if err != nil {
		return 0, 0, 0, err
	}
	defer primary.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, err
	}
	heartbeat := timeout / 10
	if heartbeat < time.Millisecond {
		heartbeat = time.Millisecond
	}
	if _, err := primary.StartReplication(ln, repl.PrimaryConfig{
		HeartbeatEvery: heartbeat,
		SyncReplicas:   1,
		AckTimeout:     30 * time.Second,
		Logger:         pcfg.Logger,
	}); err != nil {
		return 0, 0, 0, err
	}

	_, fg, err := syntheticParts(cfg.Films)
	if err != nil {
		return 0, 0, 0, err
	}
	follower, err := precis.OpenFollower(fg, precis.ReplicaConfig{
		Addr:       ln.Addr().String(),
		Dir:        fdir,
		Fsync:      precis.FsyncNever,
		BackoffMin: time.Millisecond,
		Logger:     pcfg.Logger,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer follower.Close()
	if _, err := waitConverged(primary, follower, 30*time.Second); err != nil {
		return 0, 0, 0, err
	}

	mid, err := firstMovieID(primary.Database())
	if err != nil {
		return 0, 0, 0, err
	}
	for i := 0; i < cfg.Mutations; i++ {
		if err := benchMutation(primary, mid, 3_000_000+i); err != nil {
			return 0, 0, 0, err
		}
	}
	if _, err := waitConverged(primary, follower, 30*time.Second); err != nil {
		return 0, 0, 0, err
	}

	if _, err := follower.EnableAutoFailover(precis.AutoFailoverConfig{
		ID:               "bench-standby",
		HeartbeatTimeout: timeout,
		PollEvery:        cfg.PollEvery,
		Promote:          precis.PromoteConfig{Logger: pcfg.Logger},
		Logger:           pcfg.Logger,
	}); err != nil {
		return 0, 0, 0, err
	}

	killed := time.Now()
	if err := primary.Close(); err != nil {
		return 0, 0, 0, err
	}

	deadline := killed.Add(30*time.Second + 10*timeout)
	var detected, promoted time.Time
	for detected.IsZero() || promoted.IsZero() {
		st := follower.ReplStats().Failover
		if st != nil && st.Detections > 0 && detected.IsZero() {
			detected = time.Now()
		}
		if st != nil && st.Promotions > 0 {
			promoted = time.Now()
		}
		if time.Now().After(deadline) {
			return 0, 0, 0, fmt.Errorf("failover bench: no promotion within %v of the kill", time.Since(killed))
		}
		if detected.IsZero() || promoted.IsZero() {
			time.Sleep(200 * time.Microsecond)
		}
	}
	// First answer: the moment a mutation is accepted by the new primary.
	for i := 0; ; i++ {
		err := benchMutation(follower, mid, 4_000_000+i)
		if err == nil {
			break
		}
		if !errors.Is(err, precis.ErrReadOnly) {
			return 0, 0, 0, fmt.Errorf("failover bench: post-kill mutation: %w", err)
		}
		if time.Now().After(deadline) {
			return 0, 0, 0, fmt.Errorf("failover bench: promoted node never accepted a write")
		}
		time.Sleep(200 * time.Microsecond)
	}
	firstAt := time.Now()
	return detected.Sub(killed), promoted.Sub(detected), firstAt.Sub(killed), nil
}

package experiments

import (
	"fmt"
	"sort"
	"time"

	"precis"
)

// DegradationConfig scales the graceful-degradation experiment: the same
// heavy query under a sweep of wall-clock deadlines, reporting how much of
// the unbounded answer each deadline buys.
type DegradationConfig struct {
	Films     int
	Deadlines []time.Duration // 0 means unbounded (the reference row)
	Runs      int             // runs per deadline (medians reported)
}

// DefaultDegradationConfig sweeps deadlines from the acceptance criteria's
// 1ms up to effectively-unbounded.
func DefaultDegradationConfig() DegradationConfig {
	return DegradationConfig{
		Films:     2000,
		Deadlines: []time.Duration{time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond, 0},
		Runs:      5,
	}
}

// DegradationPoint is one deadline's result.
type DegradationPoint struct {
	Deadline    time.Duration // 0 = unbounded
	Median      time.Duration // median wall time per query
	Tuples      int           // median answer tuples
	PartialRate float64       // fraction of runs truncated
	Reason      precis.TruncationReason
}

// DegradationReport is the output of Degradation.
type DegradationReport struct {
	Films  int
	Query  string
	Points []DegradationPoint
}

func (r DegradationReport) String() string {
	s := fmt.Sprintf("Graceful degradation (%d films, q=%q): answer size vs deadline\n", r.Films, r.Query)
	for _, p := range r.Points {
		d := "unbounded"
		if p.Deadline > 0 {
			d = p.Deadline.String()
		}
		reason := string(p.Reason)
		if reason == "" {
			reason = "complete"
		}
		s += fmt.Sprintf("  deadline=%-10s median=%-12v tuples=%-6d partial=%3.0f%%  (%s)\n",
			d, p.Median, p.Tuples, 100*p.PartialRate, reason)
	}
	return s
}

// Degradation measures the paper engine's bounded-resource behavior: under
// a wall-clock deadline the generator returns the prefix answer built so
// far instead of an error, so tighter deadlines buy smaller — but never
// empty — answers. The unbounded row (deadline 0) is the reference size.
func Degradation(cfg DegradationConfig) (DegradationReport, error) {
	var report DegradationReport
	report.Films = cfg.Films
	eng, q, err := popularQuery(cfg.Films)
	if err != nil {
		return report, err
	}
	report.Query = q
	if cfg.Runs < 1 {
		cfg.Runs = 1
	}
	for _, d := range cfg.Deadlines {
		durs := make([]time.Duration, 0, cfg.Runs)
		tuples := make([]int, 0, cfg.Runs)
		partial := 0
		var reason precis.TruncationReason
		for r := 0; r < cfg.Runs; r++ {
			opts := parallelOptions(0)
			if d > 0 {
				opts.Budget = precis.Budget{Deadline: time.Now().Add(d)}
			}
			start := time.Now()
			ans, err := eng.QueryString(q, opts)
			if err != nil {
				return report, err
			}
			durs = append(durs, time.Since(start))
			n := ans.Database.TotalTuples()
			if n == 0 {
				return report, fmt.Errorf("degradation: deadline %v returned an empty answer", d)
			}
			tuples = append(tuples, n)
			if ans.Partial {
				partial++
				reason = ans.Truncation
			}
		}
		sort.Ints(tuples)
		report.Points = append(report.Points, DegradationPoint{
			Deadline:    d,
			Median:      median(durs),
			Tuples:      tuples[len(tuples)/2],
			PartialRate: float64(partial) / float64(cfg.Runs),
			Reason:      reason,
		})
	}
	return report, nil
}

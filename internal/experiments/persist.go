package experiments

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"precis"
	"precis/internal/dataset"
	"precis/internal/schemagraph"
	"precis/internal/storage"
)

// PersistBenchConfig scales the durability experiments: WAL append
// throughput under each fsync policy, and cold-start recovery time as the
// dataset grows.
type PersistBenchConfig struct {
	Appends    int   // mutations per fsync policy
	Films      []int // synthetic dataset sizes for the recovery sweep
	WALRecords int   // un-checkpointed mutations each recovery must replay
	Runs       int   // recovery timings per size (median reported)
}

// DefaultPersistBenchConfig keeps the always-fsync leg small enough to
// finish on a laptop disk while still amortising per-call overhead.
func DefaultPersistBenchConfig() PersistBenchConfig {
	return PersistBenchConfig{
		Appends:    500,
		Films:      []int{500, 2000, 8000},
		WALRecords: 500,
		Runs:       3,
	}
}

// FsyncPoint is one fsync policy's append-throughput result.
type FsyncPoint struct {
	Policy    string
	Appends   int
	Elapsed   time.Duration
	PerSecond float64 // records durably appended per second
	WALBytes  int64
}

// RecoveryPoint is one dataset size's cold-start result.
type RecoveryPoint struct {
	Films        int
	Tuples       int // total tuples recovered
	WALReplayed  int
	MedianReopen time.Duration // full Open(): snapshot load + WAL replay + index rebuild
}

// PersistReport is the output of PersistBench.
type PersistReport struct {
	Fsync    []FsyncPoint
	Recovery []RecoveryPoint
}

func (r PersistReport) String() string {
	s := "WAL append throughput by fsync policy (1 insert per record, Sync at end)\n"
	for _, p := range r.Fsync {
		s += fmt.Sprintf("  fsync=%-9s appends=%-6d elapsed=%-12v %10.0f rec/s  wal=%dB\n",
			p.Policy, p.Appends, p.Elapsed.Round(time.Microsecond), p.PerSecond, p.WALBytes)
	}
	s += "Cold-start recovery time vs dataset size (crash-style reopen)\n"
	for _, p := range r.Recovery {
		s += fmt.Sprintf("  films=%-6d tuples=%-7d wal_replayed=%-5d median_open=%v\n",
			p.Films, p.Tuples, p.WALReplayed, p.MedianReopen.Round(time.Microsecond))
	}
	return s
}

// benchPersistConfig silences the recovery/checkpoint logging that would
// otherwise interleave with the report.
func benchPersistConfig(dir string, policy precis.FsyncPolicy) precis.PersistConfig {
	return precis.PersistConfig{
		Dir:             dir,
		Fsync:           policy,
		CheckpointBytes: -1, // never checkpoint mid-benchmark
		Logger:          log.New(io.Discard, "", 0),
	}
}

// syntheticParts builds the seed database + annotated graph for one size.
func syntheticParts(films int) (*storage.Database, *schemagraph.Graph, error) {
	cfg := dataset.DefaultSyntheticConfig()
	cfg.Films = films
	db, err := dataset.SyntheticMovies(cfg)
	if err != nil {
		return nil, nil, err
	}
	g, err := dataset.PaperGraph(db)
	if err != nil {
		return nil, nil, err
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		return nil, nil, err
	}
	return db, g, nil
}

// benchMutation appends one representative WAL record: a GENRE insert
// against an existing film (the smallest logged mutation that touches a
// relation, the inverted index and a foreign key).
func benchMutation(eng *precis.Engine, mid storage.Value, i int) error {
	_, err := eng.Insert("GENRE", mid, storage.String(fmt.Sprintf("bench-%d", i)))
	return err
}

// firstMovieID returns one existing MOVIE.mid to hang bench inserts off.
func firstMovieID(db *storage.Database) (storage.Value, error) {
	movies := db.Relation("MOVIE")
	if movies == nil {
		return storage.Null, fmt.Errorf("persist bench: no MOVIE relation")
	}
	var mid storage.Value
	found := false
	movies.Scan(func(t storage.Tuple) bool {
		mid, found = t.Values[0], true
		return false
	})
	if !found {
		return storage.Null, fmt.Errorf("persist bench: MOVIE relation is empty")
	}
	return mid, nil
}

// PersistBench measures (a) durable append throughput per fsync policy and
// (b) cold-start recovery latency as the snapshot grows, on temporary
// directories that are removed before returning.
func PersistBench(cfg PersistBenchConfig) (PersistReport, error) {
	var report PersistReport
	for _, policy := range []precis.FsyncPolicy{precis.FsyncAlways, precis.FsyncInterval, precis.FsyncNever} {
		point, err := fsyncPoint(cfg, policy)
		if err != nil {
			return report, err
		}
		report.Fsync = append(report.Fsync, point)
	}
	for _, films := range cfg.Films {
		point, err := recoveryPoint(cfg, films)
		if err != nil {
			return report, err
		}
		report.Recovery = append(report.Recovery, point)
	}
	return report, nil
}

// fsyncPoint times cfg.Appends logged inserts under one fsync policy,
// ending with an explicit Sync so the three policies are compared on
// durable records, not buffered ones.
func fsyncPoint(cfg PersistBenchConfig, policy precis.FsyncPolicy) (FsyncPoint, error) {
	dir, err := os.MkdirTemp("", "precis-persist-bench-")
	if err != nil {
		return FsyncPoint{}, err
	}
	defer os.RemoveAll(dir)
	db, g, err := syntheticParts(500)
	if err != nil {
		return FsyncPoint{}, err
	}
	eng, err := precis.Open(db, g, benchPersistConfig(dir, policy))
	if err != nil {
		return FsyncPoint{}, err
	}
	defer eng.Close()
	mid, err := firstMovieID(eng.Database())
	if err != nil {
		return FsyncPoint{}, err
	}
	start := time.Now()
	for i := 0; i < cfg.Appends; i++ {
		if err := benchMutation(eng, mid, i); err != nil {
			return FsyncPoint{}, err
		}
	}
	if err := eng.Sync(); err != nil {
		return FsyncPoint{}, err
	}
	elapsed := time.Since(start)
	st := eng.PersistStats()
	return FsyncPoint{
		Policy:    st.Fsync,
		Appends:   cfg.Appends,
		Elapsed:   elapsed,
		PerSecond: float64(cfg.Appends) / elapsed.Seconds(),
		WALBytes:  st.WALBytes,
	}, nil
}

// recoveryPoint seeds one persistent directory of the given size, appends
// cfg.WALRecords un-checkpointed mutations, then "crashes" (no Close) and
// times cfg.Runs reopens. Each run recovers a fresh copy of the crashed
// files, because a reopened engine's Close checkpoints and would otherwise
// leave later runs nothing to replay.
func recoveryPoint(cfg PersistBenchConfig, films int) (RecoveryPoint, error) {
	crashDir, err := os.MkdirTemp("", "precis-persist-bench-")
	if err != nil {
		return RecoveryPoint{}, err
	}
	defer os.RemoveAll(crashDir)

	db, g, err := syntheticParts(films)
	if err != nil {
		return RecoveryPoint{}, err
	}
	eng, err := precis.Open(db, g, benchPersistConfig(crashDir, precis.FsyncNever))
	if err != nil {
		return RecoveryPoint{}, err
	}
	mid, err := firstMovieID(eng.Database())
	if err == nil {
		for i := 0; i < cfg.WALRecords && err == nil; i++ {
			err = benchMutation(eng, mid, i)
		}
	}
	if err == nil {
		err = eng.Sync() // flush buffered frames; Close would checkpoint instead
	}
	if err != nil {
		eng.Close()
		return RecoveryPoint{}, err
	}
	// The "crash": keep the engine open (so no final checkpoint runs) and
	// work from copies of the on-disk files.
	defer eng.Close()

	runs := cfg.Runs
	if runs < 1 {
		runs = 1
	}
	var point RecoveryPoint
	times := make([]time.Duration, 0, runs)
	for r := 0; r < runs; r++ {
		runDir, err := os.MkdirTemp("", "precis-persist-run-")
		if err != nil {
			return RecoveryPoint{}, err
		}
		if err := copyDir(crashDir, runDir); err != nil {
			os.RemoveAll(runDir)
			return RecoveryPoint{}, err
		}
		seedDB, seedG, err := syntheticParts(films)
		if err != nil {
			os.RemoveAll(runDir)
			return RecoveryPoint{}, err
		}
		start := time.Now()
		re, err := precis.Open(seedDB, seedG, benchPersistConfig(runDir, precis.FsyncNever))
		if err != nil {
			os.RemoveAll(runDir)
			return RecoveryPoint{}, err
		}
		times = append(times, time.Since(start))
		st := re.PersistStats()
		point = RecoveryPoint{
			Films:       films,
			Tuples:      re.Database().TotalTuples(),
			WALReplayed: st.Recovery.WALRecordsReplayed,
		}
		cerr := re.Close()
		os.RemoveAll(runDir)
		if cerr != nil {
			return RecoveryPoint{}, cerr
		}
	}
	point.MedianReopen = median(times)
	return point, nil
}

// copyDir copies every regular file in src into dst (flat: the data
// directory has no subdirectories).
func copyDir(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			return err
		}
	}
	return nil
}

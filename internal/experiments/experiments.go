// Package experiments implements the paper's evaluation (§6): runnable
// reproductions of Figure 7 (Result Schema Generator time vs degree d),
// Figure 8 (Result Database Generator time vs tuples-per-relation c_R),
// Figure 9 (NaïveQ vs Round-Robin vs number of relations n_R), the cost
// model validation (Formulas 1–3), the §5 running example, and the baseline
// contrast of §2. cmd/precis-bench prints each experiment's series; the
// root bench_test.go wraps the same workloads in testing.B benchmarks.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"precis/internal/baseline"
	"precis/internal/core"
	"precis/internal/costmodel"
	"precis/internal/dataset"
	"precis/internal/invidx"
	"precis/internal/nlg"
	"precis/internal/schemagraph"
	"precis/internal/sqlx"
	"precis/internal/storage"
)

// Point is one (x, duration) measurement of a series.
type Point struct {
	X    int
	Mean time.Duration // median across runs, robust to scheduler outliers
	Runs int
}

// median returns the middle duration of the sample.
func median(durs []time.Duration) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// Series is a named measurement curve.
type Series struct {
	Name   string
	Points []Point
}

// String renders the series as aligned text rows.
func (s Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "  x=%-6d mean=%-12v runs=%d\n", p.X, p.Mean, p.Runs)
	}
	return b.String()
}

// F7Config parameterizes Figure 7. The paper uses the degree "maximum
// number of attributes projected in the answer", 20 randomly generated
// weight-sets, and tokens contained in a single relation R0, averaging 200
// runs per point.
type F7Config struct {
	Degrees    []int
	WeightSets int
	SeedRels   int // how many choices of R0 per weight-set
	Graph      dataset.GraphConfig
}

// DefaultF7Config mirrors the paper's protocol at laptop scale.
func DefaultF7Config() F7Config {
	return F7Config{
		Degrees:    []int{5, 10, 20, 40, 60, 80, 100},
		WeightSets: 20,
		SeedRels:   10,
		Graph:      dataset.DefaultGraphConfig(),
	}
}

// Figure7 measures Result Schema Generator execution time as a function of
// the degree d.
func Figure7(cfg F7Config) (Series, error) {
	out := Series{Name: "Figure 7: Result Schema Generator time vs degree d"}
	graphs := make([]*schemagraph.Graph, cfg.WeightSets)
	for ws := range graphs {
		gcfg := cfg.Graph
		gcfg.Seed = int64(ws + 1)
		g, err := dataset.RandomGraph(gcfg)
		if err != nil {
			return out, err
		}
		graphs[ws] = g
	}
	for _, d := range cfg.Degrees {
		var durs []time.Duration
		for _, g := range graphs {
			rels := g.Relations()
			n := cfg.SeedRels
			if n > len(rels) {
				n = len(rels)
			}
			for s := 0; s < n; s++ {
				seed := rels[s]
				start := time.Now()
				if _, err := core.GenerateSchema(g, []string{seed}, core.MaxAttributes(d)); err != nil {
					return out, err
				}
				durs = append(durs, time.Since(start))
			}
		}
		out.Points = append(out.Points, Point{X: d, Mean: median(durs), Runs: len(durs)})
	}
	return out, nil
}

// F8Config parameterizes Figure 8: 10 sets of 4 relations, each relation as
// the seed R0, 5 random seed-tuple sets, all joins via NaïveQ.
type F8Config struct {
	Cardinalities []int // c_R sweep
	Sets          int   // independent chain databases
	SeedSets      int   // random seed-tuple sets per R0
	SeedTuples    int   // tuples per seed set
	Chain         dataset.ChainConfig
}

// DefaultF8Config mirrors the paper: c_R in 10..90, n_R = 4. The chain uses
// a deterministic fanout of 4 so the tuples joining the seeds far exceed
// c_R across the sweep and the cardinality budget is what binds.
func DefaultF8Config() F8Config {
	return F8Config{
		Cardinalities: []int{10, 20, 30, 40, 50, 60, 70, 80, 90},
		Sets:          10,
		SeedSets:      5,
		SeedTuples:    10,
		Chain: dataset.ChainConfig{
			Relations: 4, RowsPerRel: 200, Fanout: 4, UniformRows: false,
		},
	}
}

// chainWorkload is a prepared chain database with its engine and schema.
type chainWorkload struct {
	eng   *sqlx.Engine
	graph *schemagraph.Graph
	rels  []string
	ids   map[string][]storage.TupleID // all tuple ids per relation
}

func buildChain(cfg dataset.ChainConfig) (*chainWorkload, error) {
	db, g, err := dataset.Chain(cfg)
	if err != nil {
		return nil, err
	}
	w := &chainWorkload{eng: sqlx.NewEngine(db), graph: g, rels: db.RelationNames(),
		ids: make(map[string][]storage.TupleID)}
	for _, rel := range w.rels {
		var ids []storage.TupleID
		db.Relation(rel).Scan(func(t storage.Tuple) bool {
			ids = append(ids, t.ID)
			return true
		})
		w.ids[rel] = ids
	}
	return w, nil
}

// runGeneration runs schema + database generation for one seed relation and
// seed tuples, returning the data-generation wall time and stats. The
// generation repeats three times and the minimum is reported, suppressing
// scheduler and GC noise the way benchmark harnesses do.
func (w *chainWorkload) runGeneration(seedRel string, seedIDs []storage.TupleID, cR int, strat core.Strategy) (time.Duration, core.GenStats, error) {
	rs, err := core.GenerateSchema(w.graph, []string{seedRel}, core.MinPathWeight(0.0001))
	if err != nil {
		return 0, core.GenStats{}, err
	}
	seeds := map[string][]storage.TupleID{seedRel: seedIDs}
	var best time.Duration
	var stats core.GenStats
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		rd, err := core.GenerateDatabase(w.eng, rs, seeds, core.MaxTuplesPerRelation(cR), strat)
		if err != nil {
			return 0, core.GenStats{}, err
		}
		elapsed := time.Since(start)
		if rep == 0 || elapsed < best {
			best = elapsed
			stats = rd.Stats
		}
	}
	return best, stats, nil
}

// pickSeedIDs deterministically draws n tuple ids for a seed set.
func pickSeedIDs(r *rand.Rand, ids []storage.TupleID, n int) []storage.TupleID {
	if n > len(ids) {
		n = len(ids)
	}
	out := make([]storage.TupleID, 0, n)
	perm := r.Perm(len(ids))
	for _, i := range perm[:n] {
		out = append(out, ids[i])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Figure8 measures Result Database Generator (NaïveQ) time vs c_R.
func Figure8(cfg F8Config) (Series, error) {
	out := Series{Name: "Figure 8: Result Database Generator (NaïveQ) time vs tuples per relation c_R (n_R = 4)"}
	workloads := make([]*chainWorkload, cfg.Sets)
	for i := range workloads {
		ch := cfg.Chain
		ch.Seed = int64(i + 1)
		w, err := buildChain(ch)
		if err != nil {
			return out, err
		}
		workloads[i] = w
	}
	// Warm every workload once so the sweep's first point does not absorb
	// cold-cache costs.
	for wi, w := range workloads {
		r := rand.New(rand.NewSource(int64(wi)))
		for _, seedRel := range w.rels {
			seedIDs := pickSeedIDs(r, w.ids[seedRel], cfg.SeedTuples)
			if _, _, err := w.runGeneration(seedRel, seedIDs, cfg.Cardinalities[0], core.StrategyNaive); err != nil {
				return out, err
			}
		}
	}
	for _, cR := range cfg.Cardinalities {
		var durs []time.Duration
		for wi, w := range workloads {
			r := rand.New(rand.NewSource(int64(1000*wi + cR)))
			for _, seedRel := range w.rels {
				for s := 0; s < cfg.SeedSets; s++ {
					seedIDs := pickSeedIDs(r, w.ids[seedRel], cfg.SeedTuples)
					d, _, err := w.runGeneration(seedRel, seedIDs, cR, core.StrategyNaive)
					if err != nil {
						return out, err
					}
					durs = append(durs, d)
				}
			}
		}
		out.Points = append(out.Points, Point{X: cR, Mean: median(durs), Runs: len(durs)})
	}
	return out, nil
}

// F9Config parameterizes Figure 9: n_R sweeps 1..8 at c_R = 5, NaïveQ vs
// Round-Robin (Round-Robin forced on every join, as the paper does to make
// the curves comparable).
type F9Config struct {
	Relations  []int
	CR         int
	Sets       int
	SeedSets   int
	SeedTuples int
	RowsPerRel int
	Fanout     int
}

// DefaultF9Config mirrors the paper.
func DefaultF9Config() F9Config {
	return F9Config{
		Relations:  []int{1, 2, 3, 4, 5, 6, 7, 8},
		CR:         5,
		Sets:       5,
		SeedSets:   5,
		SeedTuples: 5,
		RowsPerRel: 50,
		Fanout:     2,
	}
}

// Figure9 measures NaïveQ vs Round-Robin time vs n_R. It returns the two
// series in order (NaïveQ, Round-Robin).
func Figure9(cfg F9Config) (Series, Series, error) {
	naive := Series{Name: fmt.Sprintf("Figure 9: Result Database NaïveQ time vs n_R (c_R = %d)", cfg.CR)}
	rrobin := Series{Name: fmt.Sprintf("Figure 9: Result Database Round-Robin time vs n_R (c_R = %d)", cfg.CR)}
	for _, nR := range cfg.Relations {
		var dn, dr []time.Duration
		for set := 0; set < cfg.Sets; set++ {
			w, err := buildChain(dataset.ChainConfig{
				Relations: nR, RowsPerRel: cfg.RowsPerRel, Fanout: cfg.Fanout,
				Seed: int64(set + 1), UniformRows: false,
			})
			if err != nil {
				return naive, rrobin, err
			}
			r := rand.New(rand.NewSource(int64(100*set + nR)))
			seedRel := w.rels[0]
			// Warmup on this fresh database.
			warm := pickSeedIDs(r, w.ids[seedRel], cfg.SeedTuples)
			if _, _, err := w.runGeneration(seedRel, warm, cfg.CR, core.StrategyNaive); err != nil {
				return naive, rrobin, err
			}
			for s := 0; s < cfg.SeedSets; s++ {
				seedIDs := pickSeedIDs(r, w.ids[seedRel], cfg.SeedTuples)
				n, _, err := w.runGeneration(seedRel, seedIDs, cfg.CR, core.StrategyNaive)
				if err != nil {
					return naive, rrobin, err
				}
				rr, _, err := w.runGeneration(seedRel, seedIDs, cfg.CR, core.StrategyRoundRobin)
				if err != nil {
					return naive, rrobin, err
				}
				dn = append(dn, n)
				dr = append(dr, rr)
			}
		}
		naive.Points = append(naive.Points, Point{X: nR, Mean: median(dn), Runs: len(dn)})
		rrobin.Points = append(rrobin.Points, Point{X: nR, Mean: median(dr), Runs: len(dr)})
	}
	return naive, rrobin, nil
}

// CostModelReport compares the cost model's predictions with measurement.
type CostModelReport struct {
	Params   costmodel.Params
	Rows     []CostModelRow
	SolvedCR int           // Formula 3 solution for the budget below
	Budget   time.Duration // the response-time budget used for Formula 3
	Achieved time.Duration // measured generation time at the solved c_R
}

// CostModelRow is one c_R point: predicted (Formula 2 over actual stats)
// vs measured time.
type CostModelRow struct {
	CR        int
	Predicted time.Duration
	Measured  time.Duration
}

// CostModel calibrates IndexTime/TupleTime and validates Formulas 1–3 on a
// 4-relation chain sweep.
func CostModel(cfg F8Config, budget time.Duration) (CostModelReport, error) {
	var report CostModelReport
	params, err := costmodel.Calibrate(costmodel.CalibrationConfig{Rows: 3000, Group: 10, Rounds: 150})
	if err != nil {
		return report, err
	}
	report.Params = params
	ch := cfg.Chain
	ch.Seed = 42
	w, err := buildChain(ch)
	if err != nil {
		return report, err
	}
	r := rand.New(rand.NewSource(7))
	seedRel := w.rels[0]
	seedIDs := pickSeedIDs(r, w.ids[seedRel], cfg.SeedTuples)
	// Warm the workload so the sweep's first points are not cold-cache.
	for rep := 0; rep < 3; rep++ {
		if _, _, err := w.runGeneration(seedRel, seedIDs, cfg.Cardinalities[len(cfg.Cardinalities)-1], core.StrategyNaive); err != nil {
			return report, err
		}
	}
	for _, cR := range cfg.Cardinalities {
		// Noise suppression: several measurements per point, keep the best
		// (each runGeneration already reports a min-of-3).
		var measured time.Duration
		var stats core.GenStats
		for rep := 0; rep < 5; rep++ {
			m, st, err := w.runGeneration(seedRel, seedIDs, cR, core.StrategyNaive)
			if err != nil {
				return report, err
			}
			if rep == 0 || m < measured {
				measured, stats = m, st
			}
		}
		report.Rows = append(report.Rows, CostModelRow{
			CR:        cR,
			Predicted: costmodel.FromStats(params, stats.SQL),
			Measured:  measured,
		})
	}
	report.Budget = budget
	report.SolvedCR = costmodel.SolveCR(params, budget, len(w.rels))
	if report.SolvedCR > 0 {
		achieved, _, err := w.runGeneration(seedRel, seedIDs, report.SolvedCR, core.StrategyNaive)
		if err != nil {
			return report, err
		}
		report.Achieved = achieved
	}
	return report, nil
}

// RunningExampleReport verifies the §5 running example end to end.
type RunningExampleReport struct {
	SchemaRelations []string
	MovieInDegree   int
	TuplesPerRel    map[string]int
	Narrative       string
	SubDatabaseOK   bool
}

// RunningExample executes Q = {"Woody Allen"} with w >= 0.9 and <= 3 tuples
// per relation on the example movies database.
func RunningExample() (RunningExampleReport, error) {
	var report RunningExampleReport
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		return report, err
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		return report, err
	}
	ix := invidx.New(db)
	occs := ix.Lookup("Woody Allen")
	seeds := make(map[string][]storage.TupleID)
	var seedRels []string
	for _, o := range occs {
		seeds[o.Relation] = append(seeds[o.Relation], o.TupleIDs...)
		seedRels = append(seedRels, o.Relation)
	}
	sort.Strings(seedRels)
	rs, err := core.GenerateSchema(g, seedRels, core.MinPathWeight(0.9))
	if err != nil {
		return report, err
	}
	rs.CopyAnnotations(g)
	report.SchemaRelations = rs.Relations()
	sort.Strings(report.SchemaRelations)
	report.MovieInDegree = rs.SeedInDegree("MOVIE")
	rd, err := core.GenerateDatabase(sqlx.NewEngine(db), rs, seeds, core.MaxTuplesPerRelation(3), core.StrategyAuto)
	if err != nil {
		return report, err
	}
	report.TuplesPerRel = rd.DB.Stats().PerRel
	report.SubDatabaseOK = storage.VerifySubDatabase(db, rd.DB) == nil
	renderer := nlg.NewRenderer()
	for _, def := range dataset.StandardMacros() {
		if err := renderer.DefineMacro(def); err != nil {
			return report, err
		}
	}
	report.Narrative, err = renderer.Narrative(rd, occs)
	return report, err
}

// BaselineReport contrasts précis answers with the §2 baselines, averaged
// over several director-name queries on a synthetic movies database.
type BaselineReport struct {
	Queries          int
	PrecisTime       time.Duration // mean per query
	PrecisRelations  float64       // mean relations in the answer
	PrecisAttributes float64
	PrecisTuples     float64
	AttrPairTime     time.Duration
	AttrPairMatches  float64
	TupleTreeTime    time.Duration
	TupleTreeResults float64
}

// Baselines runs nQueries director-name queries through all three systems
// and averages times and answer sizes.
func Baselines(films, nQueries int) (BaselineReport, error) {
	var report BaselineReport
	cfg := dataset.DefaultSyntheticConfig()
	cfg.Films = films
	db, err := dataset.SyntheticMovies(cfg)
	if err != nil {
		return report, err
	}
	g, err := dataset.PaperGraph(db)
	if err != nil {
		return report, err
	}
	ix := invidx.New(db)
	directors := db.Relation("DIRECTOR").Tuples()
	if nQueries > len(directors) {
		nQueries = len(directors)
	}
	if nQueries < 1 {
		nQueries = 1
	}
	report.Queries = nQueries
	movies := db.Relation("MOVIE")
	ti := movies.Schema().ColumnIndex("title")
	di := movies.Schema().ColumnIndex("did")
	eng := sqlx.NewEngine(db)

	for q := 0; q < nQueries; q++ {
		director := directors[q]
		dname := director.Values[1].AsString()

		start := time.Now()
		occs := ix.Lookup(dname)
		seeds := make(map[string][]storage.TupleID)
		var seedRels []string
		for _, o := range occs {
			seeds[o.Relation] = append(seeds[o.Relation], o.TupleIDs...)
			seedRels = append(seedRels, o.Relation)
		}
		sort.Strings(seedRels)
		rs, err := core.GenerateSchema(g, seedRels, core.MinPathWeight(0.9))
		if err != nil {
			return report, err
		}
		rd, err := core.GenerateDatabase(eng, rs, seeds, core.MaxTuplesPerRelation(10), core.StrategyAuto)
		if err != nil {
			return report, err
		}
		report.PrecisTime += time.Since(start)
		report.PrecisRelations += float64(rd.DB.NumRelations())
		report.PrecisTuples += float64(rd.DB.TotalTuples())
		report.PrecisAttributes += float64(rs.NumAttributes())

		start = time.Now()
		matches := baseline.AttributePairSearch(db, ix, []string{dname})
		report.AttrPairTime += time.Since(start)
		report.AttrPairMatches += float64(len(matches))

		// The tuple-tree baseline connects the director with one of their
		// own movies (guaranteed joinable within 1 edge).
		title := ""
		movies.Scan(func(t storage.Tuple) bool {
			if t.Values[di].Equal(director.Values[0]) {
				title = t.Values[ti].AsString()
				return false
			}
			return true
		})
		if title == "" {
			title = movies.Tuples()[0].Values[ti].AsString()
		}
		start = time.Now()
		trees, err := baseline.TupleTreeSearch(db, g, ix, []string{dname, title}, 3, 20)
		if err != nil {
			return report, err
		}
		report.TupleTreeTime += time.Since(start)
		report.TupleTreeResults += float64(len(trees))
	}

	n := time.Duration(nQueries)
	report.PrecisTime /= n
	report.AttrPairTime /= n
	report.TupleTreeTime /= n
	fn := float64(nQueries)
	report.PrecisRelations /= fn
	report.PrecisTuples /= fn
	report.PrecisAttributes /= fn
	report.AttrPairMatches /= fn
	report.TupleTreeResults /= fn
	return report, nil
}

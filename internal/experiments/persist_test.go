package experiments

import (
	"strings"
	"testing"
)

// TestPersistBenchReport runs the durability experiment at toy scale and
// pins its invariants: every fsync policy appears with positive
// throughput and identical WAL bytes (the policies may only differ in
// flush timing), and each recovery point actually replayed the
// un-checkpointed records.
func TestPersistBenchReport(t *testing.T) {
	cfg := PersistBenchConfig{
		Appends:    40,
		Films:      []int{200},
		WALRecords: 25,
		Runs:       2,
	}
	report, err := PersistBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Fsync) != 3 {
		t.Fatalf("fsync points = %d, want 3", len(report.Fsync))
	}
	for i, p := range report.Fsync {
		if p.PerSecond <= 0 || p.Appends != cfg.Appends {
			t.Errorf("fsync point %d malformed: %+v", i, p)
		}
		if p.WALBytes != report.Fsync[0].WALBytes {
			t.Errorf("fsync=%s wrote %d WAL bytes, fsync=%s wrote %d — policies must write identical logs",
				p.Policy, p.WALBytes, report.Fsync[0].Policy, report.Fsync[0].WALBytes)
		}
	}
	if len(report.Recovery) != 1 {
		t.Fatalf("recovery points = %d, want 1", len(report.Recovery))
	}
	rec := report.Recovery[0]
	if rec.WALReplayed != cfg.WALRecords {
		t.Errorf("replayed %d WAL records, want %d", rec.WALReplayed, cfg.WALRecords)
	}
	if rec.Tuples == 0 || rec.MedianReopen <= 0 {
		t.Errorf("recovery point malformed: %+v", rec)
	}
	s := report.String()
	for _, want := range []string{"fsync=always", "fsync=interval", "fsync=never", "films=200"} {
		if !strings.Contains(s, want) {
			t.Errorf("report rendering missing %q:\n%s", want, s)
		}
	}
}

package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"precis"
)

// CheckpointBenchConfig scales the bounded-pause durability experiments:
// checkpoint pause (full vs delta) on a mostly-clean database as it grows,
// and cold-start recovery with the persisted inverted index vs a rebuild.
type CheckpointBenchConfig struct {
	Films []int // synthetic dataset sizes
	Dirty int   // mutations between checkpoints (the dirty set)
	Runs  int   // recovery timings per size (median reported)
}

// DefaultCheckpointBenchConfig mirrors the durability sweep sizes so the
// two reports line up row for row.
func DefaultCheckpointBenchConfig() CheckpointBenchConfig {
	return CheckpointBenchConfig{
		Films: []int{500, 2000, 8000},
		Dirty: 200,
		Runs:  3,
	}
}

// CheckpointPoint is one dataset size's checkpoint-cost result. Pause is
// the time the mutation lock was held (rotation + dirty capture); Wall is
// the whole checkpoint including off-lock serialization and fsync.
type CheckpointPoint struct {
	Films      int
	Tuples     int
	Dirty      int
	FullWall   time.Duration
	FullPause  time.Duration
	FullBytes  int64
	DeltaWall  time.Duration
	DeltaPause time.Duration
	DeltaBytes int64
}

// IndexRecoveryPoint compares a cold start that loads the persisted
// inverted index against one forced to rebuild it (index file removed).
type IndexRecoveryPoint struct {
	Films         int
	Tuples        int
	MedianLoad    time.Duration // persisted index present and adopted
	MedianRebuild time.Duration // index file deleted: full re-tokenize
}

// CheckpointReport is the output of CheckpointBench.
type CheckpointReport struct {
	Pause    []CheckpointPoint
	Recovery []IndexRecoveryPoint
}

func (r CheckpointReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Checkpoint cost on a mostly-clean database (%s dirty mutations per checkpoint)\n",
		countLabel(r.Pause))
	for _, p := range r.Pause {
		fmt.Fprintf(&b, "  films=%-6d tuples=%-7d full: wall=%-12v pause=%-10v %9dB   delta: wall=%-12v pause=%-10v %7dB\n",
			p.Films, p.Tuples,
			p.FullWall.Round(time.Microsecond), p.FullPause.Round(time.Microsecond), p.FullBytes,
			p.DeltaWall.Round(time.Microsecond), p.DeltaPause.Round(time.Microsecond), p.DeltaBytes)
	}
	b.WriteString("Cold-start recovery: persisted inverted index vs forced rebuild\n")
	for _, p := range r.Recovery {
		speedup := "n/a"
		if p.MedianLoad > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(p.MedianRebuild)/float64(p.MedianLoad))
		}
		fmt.Fprintf(&b, "  films=%-6d tuples=%-7d open(index loaded)=%-12v open(rebuild)=%-12v speedup=%s\n",
			p.Films, p.Tuples, p.MedianLoad.Round(time.Microsecond), p.MedianRebuild.Round(time.Microsecond), speedup)
	}
	return b.String()
}

func countLabel(pts []CheckpointPoint) string {
	if len(pts) == 0 {
		return "?"
	}
	return fmt.Sprintf("%d", pts[0].Dirty)
}

// CheckpointBench measures (a) checkpoint pause and wall time, full vs
// delta, as the database grows while the dirty set stays fixed, and (b)
// cold-start recovery latency with and without the persisted index.
func CheckpointBench(cfg CheckpointBenchConfig) (CheckpointReport, error) {
	var report CheckpointReport
	for _, films := range cfg.Films {
		point, err := checkpointPoint(cfg, films)
		if err != nil {
			return report, err
		}
		report.Pause = append(report.Pause, point)
	}
	for _, films := range cfg.Films {
		point, err := indexRecoveryPoint(cfg, films)
		if err != nil {
			return report, err
		}
		report.Recovery = append(report.Recovery, point)
	}
	return report, nil
}

// checkpointOnce opens a fresh engine of the given size, dirties cfg.Dirty
// tuples, takes one checkpoint under the supplied compaction policy, and
// returns its wall time, lock pause, and bytes written.
func checkpointOnce(cfg CheckpointBenchConfig, films, compactEvery int) (wall, pause time.Duration, bytes int64, tuples int, err error) {
	dir, err := os.MkdirTemp("", "precis-ckpt-bench-")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	db, g, err := syntheticParts(films)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	pcfg := benchPersistConfig(dir, precis.FsyncNever)
	pcfg.CompactEvery = compactEvery
	pcfg.CompactBytes = -1 // size-triggered compaction off: the flag decides
	eng, err := precis.Open(db, g, pcfg)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer eng.Close()
	mid, err := firstMovieID(eng.Database())
	if err != nil {
		return 0, 0, 0, 0, err
	}
	for i := 0; i < cfg.Dirty; i++ {
		if err := benchMutation(eng, mid, i); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	before := eng.PersistStats()
	start := time.Now()
	if err := eng.Checkpoint(); err != nil {
		return 0, 0, 0, 0, err
	}
	wall = time.Since(start)
	after := eng.PersistStats()
	pause = time.Duration(after.LastCheckpointPauseMS * float64(time.Millisecond))
	bytes = (after.DeltaBytesWritten - before.DeltaBytesWritten) +
		(after.FullBytesWritten - before.FullBytesWritten)
	return wall, pause, bytes, eng.Database().TotalTuples(), nil
}

func checkpointPoint(cfg CheckpointBenchConfig, films int) (CheckpointPoint, error) {
	point := CheckpointPoint{Films: films, Dirty: cfg.Dirty}
	// Full: compaction on every checkpoint (CompactEvery < 0).
	wall, pause, bytes, tuples, err := checkpointOnce(cfg, films, -1)
	if err != nil {
		return point, err
	}
	point.FullWall, point.FullPause, point.FullBytes, point.Tuples = wall, pause, bytes, tuples
	// Delta: compaction pushed out of reach.
	wall, pause, bytes, _, err = checkpointOnce(cfg, films, 1<<20)
	if err != nil {
		return point, err
	}
	point.DeltaWall, point.DeltaPause, point.DeltaBytes = wall, pause, bytes
	return point, nil
}

// indexRecoveryPoint seeds one size, takes a full checkpoint (which
// persists the index beside the snapshot), "crashes", and times reopens of
// the crash dir twice per run: once as-is (index adopted) and once with the
// index file removed (forced rebuild).
func indexRecoveryPoint(cfg CheckpointBenchConfig, films int) (IndexRecoveryPoint, error) {
	crashDir, err := os.MkdirTemp("", "precis-ckpt-bench-")
	if err != nil {
		return IndexRecoveryPoint{}, err
	}
	defer os.RemoveAll(crashDir)
	db, g, err := syntheticParts(films)
	if err != nil {
		return IndexRecoveryPoint{}, err
	}
	pcfg := benchPersistConfig(crashDir, precis.FsyncNever)
	pcfg.CompactEvery = -1 // full checkpoint: persists the index snapshot
	eng, err := precis.Open(db, g, pcfg)
	if err != nil {
		return IndexRecoveryPoint{}, err
	}
	mid, err := firstMovieID(eng.Database())
	if err == nil {
		for i := 0; i < cfg.Dirty && err == nil; i++ {
			err = benchMutation(eng, mid, i)
		}
	}
	if err == nil {
		err = eng.Checkpoint()
	}
	if err != nil {
		eng.Close()
		return IndexRecoveryPoint{}, err
	}
	defer eng.Close() // held open: the crash copies must keep their chain

	point := IndexRecoveryPoint{Films: films}
	runs := cfg.Runs
	if runs < 1 {
		runs = 1
	}
	loads := make([]time.Duration, 0, runs)
	rebuilds := make([]time.Duration, 0, runs)
	for r := 0; r < runs; r++ {
		for _, removeIndex := range []bool{false, true} {
			runDir, err := os.MkdirTemp("", "precis-ckpt-run-")
			if err != nil {
				return point, err
			}
			if err := copyDir(crashDir, runDir); err != nil {
				os.RemoveAll(runDir)
				return point, err
			}
			if removeIndex {
				matches, _ := filepath.Glob(filepath.Join(runDir, "index-*.pidx"))
				for _, m := range matches {
					os.Remove(m)
				}
			}
			seedDB, seedG, err := syntheticParts(films)
			if err != nil {
				os.RemoveAll(runDir)
				return point, err
			}
			start := time.Now()
			re, err := precis.Open(seedDB, seedG, benchPersistConfig(runDir, precis.FsyncNever))
			if err != nil {
				os.RemoveAll(runDir)
				return point, err
			}
			elapsed := time.Since(start)
			loaded := re.PersistStats().Recovery.IndexLoaded
			point.Tuples = re.Database().TotalTuples()
			cerr := re.Close()
			os.RemoveAll(runDir)
			if cerr != nil {
				return point, cerr
			}
			if removeIndex {
				if loaded {
					return point, fmt.Errorf("checkpoint bench: films=%d reported a loaded index with the file removed", films)
				}
				rebuilds = append(rebuilds, elapsed)
			} else {
				if !loaded {
					return point, fmt.Errorf("checkpoint bench: films=%d did not load the persisted index", films)
				}
				loads = append(loads, elapsed)
			}
		}
	}
	point.MedianLoad = median(loads)
	point.MedianRebuild = median(rebuilds)
	return point, nil
}

package experiments

import (
	"sort"
	"time"

	"precis/internal/core"
	"precis/internal/dataset"
	"precis/internal/invidx"
	"precis/internal/schemagraph"
	"precis/internal/sqlx"
	"precis/internal/storage"
)

// AblationReport quantifies the design choices DESIGN.md calls out.
type AblationReport struct {
	// Schema-generator pruning (Figure 3's expansion cut-off): time with
	// and without, with identical outputs.
	PruningOn, PruningOff time.Duration
	// Join ordering under a tight total budget on the running example:
	// tuples landed in MOVIE (the highest-weight join target) per policy.
	WeightOrderMovieTuples, FIFOMovieTuples int
	// In-degree postponement in the two-seed diamond scenario: tuples of
	// the downstream relation retrieved with and without postponement
	// (2 expected with, 1 without).
	PostponedChildren, EagerChildren int
}

// Ablations runs all three studies.
func Ablations() (AblationReport, error) {
	var report AblationReport

	// 1. Pruning.
	gcfg := dataset.DefaultGraphConfig()
	g, err := dataset.RandomGraph(gcfg)
	if err != nil {
		return report, err
	}
	seed := g.Relations()[0]
	timeGen := func(opts core.SchemaGeneratorOptions) (time.Duration, error) {
		var best time.Duration
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			if _, err := core.GenerateSchemaOpts(g, []string{seed}, core.MaxAttributes(60), opts); err != nil {
				return 0, err
			}
			if d := time.Since(start); rep == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	if report.PruningOn, err = timeGen(core.SchemaGeneratorOptions{}); err != nil {
		return report, err
	}
	if report.PruningOff, err = timeGen(core.SchemaGeneratorOptions{DisablePruning: true}); err != nil {
		return report, err
	}

	// 2. Join ordering on the running example under a total budget of 6.
	db, mg, err := dataset.ExampleMovies()
	if err != nil {
		return report, err
	}
	ix := invidx.New(db)
	occs := ix.Lookup("Woody Allen")
	seeds := make(map[string][]storage.TupleID)
	var seedRels []string
	for _, o := range occs {
		seeds[o.Relation] = append(seeds[o.Relation], o.TupleIDs...)
		seedRels = append(seedRels, o.Relation)
	}
	sort.Strings(seedRels)
	rs, err := core.GenerateSchema(mg, seedRels, core.MinPathWeight(0.9))
	if err != nil {
		return report, err
	}
	movieTuples := func(opts core.DBGenOptions) (int, error) {
		rd, err := core.GenerateDatabaseOpts(sqlx.NewEngine(db), rs, seeds,
			core.MaxTotalTuples(6), core.StrategyAuto, opts)
		if err != nil {
			return 0, err
		}
		return rd.DB.Relation("MOVIE").Len(), nil
	}
	if report.WeightOrderMovieTuples, err = movieTuples(core.DBGenOptions{}); err != nil {
		return report, err
	}
	if report.FIFOMovieTuples, err = movieTuples(core.DBGenOptions{FIFOJoins: true}); err != nil {
		return report, err
	}

	// 3. Postponement in the diamond scenario.
	if report.PostponedChildren, report.EagerChildren, err = postponementStudy(); err != nil {
		return report, err
	}
	return report, nil
}

// postponementStudy builds the A/B -> M -> G diamond where M -> G outweighs
// B -> M and counts G's tuples with and without in-degree postponement.
func postponementStudy() (postponed, eager int, err error) {
	build := func() (*storage.Database, *schemagraph.Graph, storage.TupleID, storage.TupleID, error) {
		db := storage.NewDatabase("diamond")
		idc := storage.Column{Name: "id", Type: storage.TypeInt}
		lbl := storage.Column{Name: "label", Type: storage.TypeString}
		mid := storage.Column{Name: "mid", Type: storage.TypeInt}
		db.MustCreateRelation(storage.MustSchema("A", "id", idc, lbl, mid))
		db.MustCreateRelation(storage.MustSchema("B", "id", idc, lbl, mid))
		db.MustCreateRelation(storage.MustSchema("M", "id", idc, lbl))
		db.MustCreateRelation(storage.MustSchema("G", "id", idc, lbl, mid))
		for _, fk := range []storage.ForeignKey{
			{FromRelation: "A", FromColumn: "mid", ToRelation: "M", ToColumn: "id"},
			{FromRelation: "B", FromColumn: "mid", ToRelation: "M", ToColumn: "id"},
			{FromRelation: "G", FromColumn: "mid", ToRelation: "M", ToColumn: "id"},
		} {
			if err := db.AddForeignKey(fk); err != nil {
				return nil, nil, 0, 0, err
			}
		}
		if err := db.CreateJoinIndexes(); err != nil {
			return nil, nil, 0, 0, err
		}
		ins := func(rel string, vals ...storage.Value) (storage.TupleID, error) {
			return db.Insert(rel, vals...)
		}
		if _, err := ins("M", storage.Int(1), storage.String("m1")); err != nil {
			return nil, nil, 0, 0, err
		}
		if _, err := ins("M", storage.Int(2), storage.String("m2")); err != nil {
			return nil, nil, 0, 0, err
		}
		aid, err := ins("A", storage.Int(1), storage.String("seedA"), storage.Int(1))
		if err != nil {
			return nil, nil, 0, 0, err
		}
		bid, err := ins("B", storage.Int(1), storage.String("seedB"), storage.Int(2))
		if err != nil {
			return nil, nil, 0, 0, err
		}
		if _, err := ins("G", storage.Int(1), storage.String("g1"), storage.Int(1)); err != nil {
			return nil, nil, 0, 0, err
		}
		if _, err := ins("G", storage.Int(2), storage.String("g2"), storage.Int(2)); err != nil {
			return nil, nil, 0, 0, err
		}
		g := schemagraph.FromDatabase(db)
		set := func(from, to string, w float64) {
			for _, e := range g.Relation(from).Out() {
				if e.To == to {
					e.Weight = w
				}
			}
		}
		set("A", "M", 1.0)
		set("M", "G", 0.95)
		set("B", "M", 0.9)
		set("M", "A", 0)
		set("M", "B", 0)
		set("G", "M", 0)
		return db, g, aid, bid, nil
	}

	run := func(opts core.DBGenOptions) (int, error) {
		db, g, aid, bid, err := build()
		if err != nil {
			return 0, err
		}
		rs, err := core.GenerateSchema(g, []string{"A", "B"}, core.MinPathWeight(0.85))
		if err != nil {
			return 0, err
		}
		seeds := map[string][]storage.TupleID{"A": {aid}, "B": {bid}}
		rd, err := core.GenerateDatabaseOpts(sqlx.NewEngine(db), rs, seeds,
			core.Unlimited(), core.StrategyAuto, opts)
		if err != nil {
			return 0, err
		}
		return rd.DB.Relation("G").Len(), nil
	}
	if postponed, err = run(core.DBGenOptions{}); err != nil {
		return 0, 0, err
	}
	if eager, err = run(core.DBGenOptions{DisablePostponement: true}); err != nil {
		return 0, 0, err
	}
	return postponed, eager, nil
}

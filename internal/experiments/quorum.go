package experiments

import (
	"fmt"
	"net"
	"os"
	"sort"
	"time"

	"precis"
	"precis/internal/repl"
)

// QuorumBenchConfig sweeps synchronous-replication commit latency: how
// much does each mutation pay when it must wait for 0, 1, or 2 durable
// follower acks, under each WAL fsync policy? The follower topology is
// held constant (Followers attached in every leg) so the sweep isolates
// the quorum requirement from the streaming load.
type QuorumBenchConfig struct {
	Films          int                  // synthetic dataset size behind the primary
	Appends        int                  // timed mutations per leg
	SyncReplicas   []int                // quorum sizes to sweep (0 = async)
	Fsyncs         []precis.FsyncPolicy // fsync policies to sweep (primary AND followers)
	FsyncInterval  time.Duration        // interval for FsyncInterval legs
	Followers      int                  // durable followers attached in every leg
	HeartbeatEvery time.Duration        // primary heartbeat pacing (carries interval-fsync acks)
}

// DefaultQuorumBenchConfig keeps each leg short while letting the quorum
// cost separate cleanly from the local fsync cost.
func DefaultQuorumBenchConfig() QuorumBenchConfig {
	return QuorumBenchConfig{
		Films:          500,
		Appends:        300,
		SyncReplicas:   []int{0, 1, 2},
		Fsyncs:         []precis.FsyncPolicy{precis.FsyncAlways, precis.FsyncInterval},
		FsyncInterval:  5 * time.Millisecond,
		Followers:      2,
		HeartbeatEvery: 5 * time.Millisecond,
	}
}

// QuorumPoint is one (quorum size, fsync policy) commit-latency sample.
type QuorumPoint struct {
	SyncReplicas int
	Fsync        string
	Appends      int
	Mean         time.Duration
	P99          time.Duration
	Max          time.Duration
}

// QuorumReport is the output of QuorumBench.
type QuorumReport struct {
	Followers int
	Points    []QuorumPoint
}

func (r QuorumReport) String() string {
	s := fmt.Sprintf("Commit latency vs sync quorum size (%d durable follower(s) attached, loopback TCP)\n", r.Followers)
	for _, p := range r.Points {
		s += fmt.Sprintf("  sync_replicas=%d fsync=%-8s appends=%-5d mean=%-10v p99=%-10v max=%v\n",
			p.SyncReplicas, p.Fsync, p.Appends,
			p.Mean.Round(time.Microsecond), p.P99.Round(time.Microsecond), p.Max.Round(time.Microsecond))
	}
	return s
}

// QuorumBench measures per-mutation commit latency for every configured
// (SyncReplicas, fsync) pair, with Followers durable followers attached
// and converged before the timed phase begins.
func QuorumBench(cfg QuorumBenchConfig) (QuorumReport, error) {
	report := QuorumReport{Followers: cfg.Followers}
	for _, policy := range cfg.Fsyncs {
		for _, quorum := range cfg.SyncReplicas {
			point, err := quorumPoint(cfg, quorum, policy)
			if err != nil {
				return report, err
			}
			report.Points = append(report.Points, point)
		}
	}
	return report, nil
}

// quorumPoint runs one leg: a primary under policy with the sync quorum
// set to quorum, Followers durable followers under the same policy, and
// cfg.Appends timed mutations.
func quorumPoint(cfg QuorumBenchConfig, quorum int, policy precis.FsyncPolicy) (QuorumPoint, error) {
	point := QuorumPoint{SyncReplicas: quorum, Fsync: policy.String(), Appends: cfg.Appends}

	dir, err := os.MkdirTemp("", "precis-quorum-bench-")
	if err != nil {
		return point, err
	}
	defer os.RemoveAll(dir)
	db, g, err := syntheticParts(cfg.Films)
	if err != nil {
		return point, err
	}
	pcfg := benchPersistConfig(dir, policy)
	pcfg.FsyncInterval = cfg.FsyncInterval
	primary, err := precis.Open(db, g, pcfg)
	if err != nil {
		return point, err
	}
	defer primary.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return point, err
	}
	if _, err := primary.StartReplication(ln, repl.PrimaryConfig{
		HeartbeatEvery: cfg.HeartbeatEvery,
		SyncReplicas:   quorum,
		AckTimeout:     30 * time.Second, // the bench measures waits, not timeouts
		Logger:         pcfg.Logger,
	}); err != nil {
		return point, err
	}

	for i := 0; i < cfg.Followers; i++ {
		fdir, err := os.MkdirTemp("", "precis-quorum-follower-")
		if err != nil {
			return point, err
		}
		defer os.RemoveAll(fdir)
		_, fg, err := syntheticParts(cfg.Films)
		if err != nil {
			return point, err
		}
		follower, err := precis.OpenFollower(fg, precis.ReplicaConfig{
			Addr:          ln.Addr().String(),
			Dir:           fdir,
			Fsync:         policy,
			FsyncInterval: cfg.FsyncInterval,
			BackoffMin:    time.Millisecond,
			Logger:        pcfg.Logger,
		})
		if err != nil {
			return point, err
		}
		defer follower.Close()
		if _, err := waitConverged(primary, follower, 30*time.Second); err != nil {
			return point, err
		}
	}

	mid, err := firstMovieID(primary.Database())
	if err != nil {
		return point, err
	}
	lat := make([]time.Duration, 0, cfg.Appends)
	for i := 0; i < cfg.Appends; i++ {
		start := time.Now()
		if err := benchMutation(primary, mid, 2_000_000+i); err != nil {
			return point, err
		}
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	point.Mean = sum / time.Duration(len(lat))
	point.P99 = lat[len(lat)*99/100]
	point.Max = lat[len(lat)-1]
	return point, nil
}

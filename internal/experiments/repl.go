package experiments

import (
	"fmt"
	"net"
	"os"
	"time"

	"precis"
	"precis/internal/repl"
)

// ReplBenchConfig scales the replication experiments: follower catch-up
// time as the primary's un-checkpointed WAL grows, and steady-state
// follower lag as the primary's mutation rate rises.
type ReplBenchConfig struct {
	Films          int           // synthetic dataset size behind the primary
	CatchupRecords []int         // WAL records the follower must stream through at bootstrap
	Rates          []int         // primary mutations per second for the lag sweep
	RateDuration   time.Duration // how long each rate leg runs
}

// DefaultReplBenchConfig keeps the sweep short enough for a laptop while
// still separating bootstrap cost from steady-state streaming.
func DefaultReplBenchConfig() ReplBenchConfig {
	return ReplBenchConfig{
		Films:          500,
		CatchupRecords: []int{0, 500, 2000},
		Rates:          []int{100, 1000, 5000, 20000},
		RateDuration:   2 * time.Second,
	}
}

// CatchupPoint is one bootstrap measurement: a fresh follower against a
// primary holding Records un-checkpointed WAL records.
type CatchupPoint struct {
	Records int
	Tuples  int // tuples in the converged follower
	Catchup time.Duration
}

// LagPoint is one steady-state measurement at a fixed mutation rate.
type LagPoint struct {
	RatePerSec int
	Applied    uint64        // records the follower applied during the leg
	MeanLag    float64       // mean lag in records across samples
	MaxLag     int64         // worst sampled lag in records
	MaxLagB    int64         // worst sampled lag in bytes
	Converge   time.Duration // drain time after the primary quiesced
}

// ReplReport is the output of ReplBench.
type ReplReport struct {
	Catchup []CatchupPoint
	Lag     []LagPoint
}

func (r ReplReport) String() string {
	s := "Follower catch-up time vs un-checkpointed WAL size (fresh bootstrap)\n"
	for _, p := range r.Catchup {
		s += fmt.Sprintf("  wal_records=%-6d tuples=%-7d catchup=%v\n",
			p.Records, p.Tuples, p.Catchup.Round(time.Microsecond))
	}
	s += "Steady-state follower lag vs primary mutation rate\n"
	for _, p := range r.Lag {
		s += fmt.Sprintf("  rate=%-6d/s applied=%-7d mean_lag=%-8.1f max_lag=%-6d max_lag_bytes=%-8d drain=%v\n",
			p.RatePerSec, p.Applied, p.MeanLag, p.MaxLag, p.MaxLagB, p.Converge.Round(time.Microsecond))
	}
	return s
}

// replPair builds a persistent primary (streaming on a loopback listener)
// and returns it with its replication address and cleanup.
func replPair(films int) (*precis.Engine, string, func(), error) {
	dir, err := os.MkdirTemp("", "precis-repl-bench-")
	if err != nil {
		return nil, "", nil, err
	}
	db, g, err := syntheticParts(films)
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", nil, err
	}
	eng, err := precis.Open(db, g, benchPersistConfig(dir, precis.FsyncNever))
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		os.RemoveAll(dir)
		return nil, "", nil, err
	}
	if _, err := eng.StartReplication(ln, repl.PrimaryConfig{Logger: benchPersistConfig(dir, precis.FsyncNever).Logger}); err != nil {
		eng.Close()
		os.RemoveAll(dir)
		return nil, "", nil, err
	}
	cleanup := func() {
		eng.Close()
		os.RemoveAll(dir)
	}
	return eng, ln.Addr().String(), cleanup, nil
}

// benchFollower opens a follower of addr using the same silent logger.
func benchFollower(addr string) (*precis.Engine, error) {
	db, g, err := syntheticParts(200)
	_ = db // the follower only needs the graph; its data streams in
	if err != nil {
		return nil, err
	}
	return precis.OpenFollower(g, precis.ReplicaConfig{
		Addr:       addr,
		BackoffMin: time.Millisecond,
		Logger:     benchPersistConfig("", precis.FsyncNever).Logger,
	})
}

// waitConverged polls until the follower's applied position reaches the
// primary's durable frontier.
func waitConverged(primary, follower *precis.Engine, timeout time.Duration) (time.Duration, error) {
	start := time.Now()
	deadline := start.Add(timeout)
	want := primary.PersistStats()
	for {
		fs := follower.ReplStats().Follower
		if fs != nil && fs.AppliedGen == want.Generation && fs.AppliedRecords == uint64(want.WALRecords) {
			return time.Since(start), nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("repl bench: follower did not converge within %v (applied %+v, want gen %d records %d)",
				timeout, fs, want.Generation, want.WALRecords)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// ReplBench measures (a) fresh-follower catch-up time as the primary's WAL
// grows and (b) steady-state follower lag while the primary mutates at a
// fixed rate, on loopback TCP with temporary directories.
func ReplBench(cfg ReplBenchConfig) (ReplReport, error) {
	var report ReplReport
	for _, records := range cfg.CatchupRecords {
		point, err := catchupPoint(cfg, records)
		if err != nil {
			return report, err
		}
		report.Catchup = append(report.Catchup, point)
	}
	for _, rate := range cfg.Rates {
		point, err := lagPoint(cfg, rate)
		if err != nil {
			return report, err
		}
		report.Lag = append(report.Lag, point)
	}
	return report, nil
}

// catchupPoint seeds a primary with records un-checkpointed mutations and
// times a fresh follower from OpenFollower to full convergence.
func catchupPoint(cfg ReplBenchConfig, records int) (CatchupPoint, error) {
	primary, addr, cleanup, err := replPair(cfg.Films)
	if err != nil {
		return CatchupPoint{}, err
	}
	defer cleanup()
	mid, err := firstMovieID(primary.Database())
	if err != nil {
		return CatchupPoint{}, err
	}
	for i := 0; i < records; i++ {
		if err := benchMutation(primary, mid, i); err != nil {
			return CatchupPoint{}, err
		}
	}
	if err := primary.Sync(); err != nil {
		return CatchupPoint{}, err
	}
	start := time.Now()
	follower, err := benchFollower(addr)
	if err != nil {
		return CatchupPoint{}, err
	}
	defer follower.Close()
	if _, err := waitConverged(primary, follower, 30*time.Second); err != nil {
		return CatchupPoint{}, err
	}
	return CatchupPoint{
		Records: records,
		Tuples:  follower.Database().TotalTuples(),
		Catchup: time.Since(start),
	}, nil
}

// lagPoint runs the primary at a fixed mutation rate with a live follower
// attached, sampling the follower's lag, then times the post-quiesce drain.
func lagPoint(cfg ReplBenchConfig, rate int) (LagPoint, error) {
	primary, addr, cleanup, err := replPair(cfg.Films)
	if err != nil {
		return LagPoint{}, err
	}
	defer cleanup()
	follower, err := benchFollower(addr)
	if err != nil {
		return LagPoint{}, err
	}
	defer follower.Close()
	mid, err := firstMovieID(primary.Database())
	if err != nil {
		return LagPoint{}, err
	}

	interval := time.Second / time.Duration(rate)
	var lagSum, lagSamples, maxLag, maxLagB int64
	startRecords := follower.ReplStats().Follower.RecordsReceived
	end := time.Now().Add(cfg.RateDuration)
	next := time.Now()
	for i := 0; time.Now().Before(end); i++ {
		if err := benchMutation(primary, mid, 1_000_000+i); err != nil {
			return LagPoint{}, err
		}
		if i%16 == 0 {
			// True lag, measured externally: the primary's live WAL position
			// minus the follower's applied position. (The follower's
			// self-reported LagRecords uses the frontier it last *heard*,
			// which trails with the stream itself — it underestimates.)
			ps := primary.PersistStats()
			fs := follower.ReplStats().Follower
			if fs != nil && fs.AppliedGen == ps.Generation {
				lag := int64(ps.WALRecords) - int64(fs.AppliedRecords)
				lagB := int64(ps.WALBytes) - int64(fs.AppliedBytes)
				if lag >= 0 {
					lagSum += lag
					lagSamples++
					maxLag = max(maxLag, lag)
					maxLagB = max(maxLagB, lagB)
				}
			}
		}
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	if err := primary.Sync(); err != nil {
		return LagPoint{}, err
	}
	drain, err := waitConverged(primary, follower, 30*time.Second)
	if err != nil {
		return LagPoint{}, err
	}
	point := LagPoint{
		RatePerSec: rate,
		Applied:    follower.ReplStats().Follower.RecordsReceived - startRecords,
		MaxLag:     maxLag,
		MaxLagB:    maxLagB,
		Converge:   drain,
	}
	if lagSamples > 0 {
		point.MeanLag = float64(lagSum) / float64(lagSamples)
	}
	return point, nil
}

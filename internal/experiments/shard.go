package experiments

import (
	"fmt"
	"time"

	"precis"
	"precis/internal/dataset"
	"precis/internal/invidx"
	"precis/internal/schemagraph"
	"precis/internal/storage"
)

// ShardBenchConfig scales the sharded-execution experiment: the same heavy
// précis query is answered by coordinators of increasing shard count over
// one synthetic dataset, and every sharded answer is checked against the
// single-engine answer for parity.
type ShardBenchConfig struct {
	Films       int
	Shards      []int // shard counts to sweep; 1 is the single-engine baseline
	Runs        int   // timed runs per shard count (median reported)
	Partitioner string
}

// DefaultShardBenchConfig sweeps the shard counts the determinism suite
// exercises.
func DefaultShardBenchConfig() ShardBenchConfig {
	return ShardBenchConfig{Films: 2000, Shards: []int{1, 2, 4, 8}, Runs: 5, Partitioner: "hash"}
}

// ShardPoint is one shard count's result.
type ShardPoint struct {
	Shards  int
	Median  time.Duration
	QPS     float64
	Speedup float64 // single-engine median / this median
}

// ShardReport is the output of ShardBench.
type ShardReport struct {
	Films       int
	Query       string
	Partitioner string
	Tuples      int // tuples in the answer (identical for every shard count)
	Points      []ShardPoint
}

func (r ShardReport) String() string {
	s := fmt.Sprintf("Sharded execution (%d films, q=%q, %s partitioning, %d answer tuples)\n",
		r.Films, r.Query, r.Partitioner, r.Tuples)
	for _, p := range r.Points {
		s += fmt.Sprintf("  shards=%-3d median=%-12v qps=%-8.1f speedup=%.2fx\n",
			p.Shards, p.Median, p.QPS, p.Speedup)
	}
	s += "  (single-process measurement: shards share the machine's cores, so this\n" +
		"   shows scatter/gather overhead and merge cost, not multi-node scaling)\n"
	return s
}

func defineStandardMacros(e *precis.Engine) error {
	for _, def := range dataset.StandardMacros() {
		if err := e.DefineMacro(def); err != nil {
			return err
		}
	}
	return nil
}

// popularDataset builds the synthetic-movies dataset and returns it with
// the name of its most prolific director (the zipf head).
func popularDataset(films int) (*storage.Database, *schemagraph.Graph, string, error) {
	cfg := dataset.DefaultSyntheticConfig()
	cfg.Films = films
	db, err := dataset.SyntheticMovies(cfg)
	if err != nil {
		return nil, nil, "", err
	}
	g, err := dataset.PaperGraph(db)
	if err != nil {
		return nil, nil, "", err
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		return nil, nil, "", err
	}
	movies := db.Relation("MOVIE")
	di := movies.Schema().ColumnIndex("did")
	counts := make(map[string]int)
	movies.Scan(func(t storage.Tuple) bool {
		counts[t.Values[di].String()]++
		return true
	})
	best, bestN := "", -1
	directors := db.Relation("DIRECTOR")
	did := directors.Schema().ColumnIndex("did")
	dn := directors.Schema().ColumnIndex("dname")
	directors.Scan(func(t storage.Tuple) bool {
		if n := counts[t.Values[did].String()]; n > bestN {
			bestN = n
			best = t.Values[dn].AsString()
		}
		return true
	})
	return db, g, best, nil
}

// ShardBench measures the same précis query across shard counts and checks
// that every sharded answer matches the single-engine answer (tuple count
// and narrative — sharding must only change latency).
func ShardBench(cfg ShardBenchConfig) (ShardReport, error) {
	var report ShardReport
	report.Films = cfg.Films
	if cfg.Partitioner == "" {
		cfg.Partitioner = "hash"
	}
	report.Partitioner = cfg.Partitioner
	if cfg.Runs < 1 {
		cfg.Runs = 1
	}
	db, g, q, err := popularDataset(cfg.Films)
	if err != nil {
		return report, err
	}
	report.Query = q
	opts := parallelOptions(0)

	// Single-engine reference: the narrative every sharded run must equal.
	ref, err := precis.New(db, g)
	if err != nil {
		return report, err
	}
	if err := defineStandardMacros(ref); err != nil {
		return report, err
	}
	narOpts := opts
	narOpts.SkipNarrative = false
	refAns, err := ref.QueryString(q, narOpts)
	if err != nil {
		return report, err
	}
	report.Tuples = refAns.Database.TotalTuples()

	single := time.Duration(0)
	for _, n := range cfg.Shards {
		eng, err := precis.NewSharded(db, g, precis.ShardedConfig{Shards: n, Partitioner: cfg.Partitioner})
		if err != nil {
			return report, err
		}
		if err := defineStandardMacros(eng); err != nil {
			return report, err
		}
		ans, err := eng.QueryString(q, narOpts)
		if err != nil {
			return report, err
		}
		if got := ans.Database.TotalTuples(); got != report.Tuples {
			return report, fmt.Errorf("shardbench: %d shard(s) produced %d tuples, single engine produced %d",
				n, got, report.Tuples)
		}
		if ans.Narrative != refAns.Narrative {
			return report, fmt.Errorf("shardbench: %d shard(s) produced a different narrative", n)
		}
		durs := make([]time.Duration, 0, cfg.Runs)
		for r := 0; r < cfg.Runs; r++ {
			start := time.Now()
			if _, err := eng.QueryString(q, opts); err != nil {
				return report, err
			}
			durs = append(durs, time.Since(start))
		}
		med := median(durs)
		if single == 0 {
			single = med
		}
		p := ShardPoint{Shards: n, Median: med}
		if med > 0 {
			p.QPS = float64(time.Second) / float64(med)
			p.Speedup = float64(single) / float64(med)
		}
		report.Points = append(report.Points, p)
	}
	return report, nil
}

// RebuildConfig scales the parallel index-rebuild experiment: the
// inverted index is rebuilt from scratch over a synthetic database — the
// dominant cost of crash recovery at scale — across worker-pool sizes.
type RebuildConfig struct {
	Films   int
	Workers []int // pool sizes to sweep; 1 is the serial invidx.New baseline
	Runs    int   // timed runs per pool size (median reported)
}

// DefaultRebuildConfig sweeps the pool sizes ROADMAP's cold-start item
// cites.
func DefaultRebuildConfig() RebuildConfig {
	return RebuildConfig{Films: 20000, Workers: []int{1, 2, 4, 8}, Runs: 3}
}

// RebuildPoint is one pool size's result.
type RebuildPoint struct {
	Workers int
	Median  time.Duration
	Speedup float64
}

// RebuildReport is the output of IndexRebuild.
type RebuildReport struct {
	Films  int
	Tuples int
	Tokens int // distinct tokens (identical for every pool size)
	Points []RebuildPoint
}

func (r RebuildReport) String() string {
	s := fmt.Sprintf("Parallel inverted-index rebuild (%d films, %d tuples, %d tokens)\n",
		r.Films, r.Tuples, r.Tokens)
	for _, p := range r.Points {
		s += fmt.Sprintf("  workers=%-3d median=%-12v speedup=%.2fx\n", p.Workers, p.Median, p.Speedup)
	}
	s += "  (single-CPU containers see ~1x: the sweep shows the available headroom)\n"
	return s
}

// IndexRebuild measures invidx.NewParallel across worker counts, checking
// that every pool size builds an index with the serial token count.
func IndexRebuild(cfg RebuildConfig) (RebuildReport, error) {
	var report RebuildReport
	report.Films = cfg.Films
	if cfg.Runs < 1 {
		cfg.Runs = 1
	}
	dcfg := dataset.DefaultSyntheticConfig()
	dcfg.Films = cfg.Films
	db, err := dataset.SyntheticMovies(dcfg)
	if err != nil {
		return report, err
	}
	report.Tuples = db.TotalTuples()
	report.Tokens = invidx.New(db).NumTokens()

	serial := time.Duration(0)
	for _, w := range cfg.Workers {
		durs := make([]time.Duration, 0, cfg.Runs)
		for r := 0; r < cfg.Runs; r++ {
			start := time.Now()
			ix := invidx.NewParallel(db, w)
			durs = append(durs, time.Since(start))
			if got := ix.NumTokens(); got != report.Tokens {
				return report, fmt.Errorf("rebuild: workers=%d built %d tokens, serial built %d", w, got, report.Tokens)
			}
		}
		med := median(durs)
		if serial == 0 {
			serial = med
		}
		sp := 0.0
		if med > 0 {
			sp = float64(serial) / float64(med)
		}
		report.Points = append(report.Points, RebuildPoint{Workers: w, Median: med, Speedup: sp})
	}
	return report, nil
}

package experiments

import (
	"fmt"
	"time"

	"precis"
	"precis/internal/dataset"
	"precis/internal/obs"
)

// StagesConfig sizes the per-stage latency breakdown experiment.
type StagesConfig struct {
	Films int // synthetic dataset size
	Runs  int // timed repetitions per strategy (medians reported)
}

// DefaultStagesConfig matches the largest dataset of the evaluation.
func DefaultStagesConfig() StagesConfig {
	return StagesConfig{Films: 2000, Runs: 7}
}

// StageRow is one pipeline stage's median latency and share of the total.
type StageRow struct {
	Stage  string
	Median time.Duration
	Share  float64 // fraction of the median total
}

// StagesStrategy is the per-stage breakdown of one retrieval strategy.
type StagesStrategy struct {
	Strategy string
	Total    time.Duration // median end-to-end wall time
	Rows     []StageRow
}

// StagesReport is the full per-stage latency table.
type StagesReport struct {
	Films      int
	Query      string
	Tuples     int
	Strategies []StagesStrategy
}

func (r StagesReport) String() string {
	s := fmt.Sprintf("Per-stage latency (%d films, q=%q, %d answer tuples, medians)\n",
		r.Films, r.Query, r.Tuples)
	for _, st := range r.Strategies {
		s += fmt.Sprintf("  %-11s total=%v\n", st.Strategy, st.Total.Round(time.Microsecond))
		for _, row := range st.Rows {
			s += fmt.Sprintf("    %-13s %-12v %5.1f%%\n",
				row.Stage, row.Median.Round(time.Microsecond), 100*row.Share)
		}
	}
	return s
}

// stageOrder is the rendering order of the pipeline stages.
var stageOrder = []string{
	obs.StageTokenize, obs.StageCacheLookup, obs.StageIndexLookup,
	obs.StageSchemaGen, obs.StageDBGen, obs.StageTranslate,
}

// Stages measures where a heavy précis query spends its time, per retrieval
// strategy, using the engine's per-query traces. It runs the most popular
// director's query over the largest synthetic dataset with both NaïveQ and
// Round-Robin, and reports per-stage medians — the observability subsystem
// applied to the paper's own evaluation workload.
func Stages(cfg StagesConfig) (StagesReport, error) {
	var report StagesReport
	report.Films = cfg.Films
	eng, q, err := popularQuery(cfg.Films)
	if err != nil {
		return report, err
	}
	report.Query = q
	// The narrative is part of this experiment (the translate stage), so
	// the engine needs the standard macros the renderer expands.
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			return report, err
		}
	}
	if cfg.Runs < 1 {
		cfg.Runs = 1
	}
	for _, strat := range []struct {
		name string
		s    precis.Strategy
	}{
		{"naiveq", precis.StrategyNaive},
		{"roundrobin", precis.StrategyRoundRobin},
	} {
		opts := precis.Options{
			Degree:      precis.MinPathWeight(0.05),
			Cardinality: precis.MaxTuplesPerRelation(150),
			Strategy:    strat.s,
			Trace:       true,
		}
		// Warm-up run (not timed) also records the answer shape.
		ans, err := eng.QueryString(q, opts)
		if err != nil {
			return report, err
		}
		if report.Tuples == 0 {
			report.Tuples = ans.Database.TotalTuples()
		}
		perStage := make(map[string][]time.Duration, len(stageOrder))
		totals := make([]time.Duration, 0, cfg.Runs)
		for r := 0; r < cfg.Runs; r++ {
			ans, err := eng.QueryString(q, opts)
			if err != nil {
				return report, err
			}
			if ans.Trace == nil {
				return report, fmt.Errorf("stages: no trace on answer (Options.Trace was set)")
			}
			totals = append(totals, ans.Trace.Total)
			for _, sp := range ans.Trace.Spans {
				perStage[sp.Name] = append(perStage[sp.Name], sp.Dur)
			}
		}
		st := StagesStrategy{Strategy: strat.name, Total: median(totals)}
		for _, name := range stageOrder {
			durs := perStage[name]
			if len(durs) == 0 {
				continue
			}
			med := median(durs)
			share := 0.0
			if st.Total > 0 {
				share = float64(med) / float64(st.Total)
			}
			st.Rows = append(st.Rows, StageRow{Stage: name, Median: med, Share: share})
		}
		report.Strategies = append(report.Strategies, st)
	}
	return report, nil
}

package repl

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReplFrameDecode drives the message reader and every body decoder
// over arbitrary bytes, exactly the way a follower session consumes its
// link. The invariants under fuzz: no panic, no unbounded allocation, and
// no silent acceptance — every malformed input must surface as io.EOF (a
// clean end) or an attributed error, because the follower's only response
// to either is to drop the link and reconnect. A decode that "succeeded"
// on corrupt bytes would be the one unrecoverable outcome: a diverged
// follower.
func FuzzReplFrameDecode(f *testing.F) {
	// Seed with one valid frame of each message type, plus a few broken
	// ones, so the fuzzer starts from coverage of every decode path.
	seed := func(typ MsgType, body []byte) []byte {
		var buf bytes.Buffer
		if err := writeMsg(&buf, typ, body); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(MsgHello, encodeHello(Hello{Version: ProtoVersion, Gen: 3, Records: 17})))
	f.Add(seed(MsgWelcome, encodeWelcome(Welcome{Version: ProtoVersion, Snapshot: true, Gen: 4})))
	f.Add(seed(MsgSnapBegin, encodeSnapBegin(SnapBegin{Gen: 4, Size: 1024})))
	f.Add(seed(MsgSnapChunk, bytes.Repeat([]byte("s"), 64)))
	f.Add(seed(MsgSnapEnd, nil))
	f.Add(seed(MsgRecord, encodeRecord(RecordMsg{Gen: 4, Seq: 9, FrontierGen: 4, FrontierRecords: 10, FrontierBytes: 512, Payload: []byte("record")}, ProtoVersion)))
	f.Add(seed(MsgHeartbeat, encodeHeartbeat(Heartbeat{FrontierGen: 4, FrontierRecords: 10, FrontierBytes: 512}, ProtoVersion)))
	f.Add(seed(MsgError, []byte("injected")))
	f.Add(seed(MsgAck, encodeAck(Ack{Gen: 4, Records: 10, Bytes: 512})))
	f.Add(seed(MsgAck, encodeAck(Ack{})))
	// v1 hello (old follower) and v2 welcome riding the heartbeat field.
	f.Add(seed(MsgHello, encodeHello(Hello{Version: 1, Gen: 2, Records: 5})))
	f.Add(seed(MsgWelcome, encodeWelcome(Welcome{Version: 2, Gen: 4, Records: 9, HeartbeatMS: 500})))
	// v3 epoch-stamped frames: hello and welcome carry the epoch
	// self-describingly; record and heartbeat carry it only under v3
	// framing, and the same structs framed at v2 seed the downgrade path.
	f.Add(seed(MsgHello, encodeHello(Hello{Version: ProtoVersion, Gen: 3, Records: 17, Epoch: 7})))
	f.Add(seed(MsgWelcome, encodeWelcome(Welcome{Version: ProtoVersion, Gen: 4, Records: 9, HeartbeatMS: 500, Epoch: 7})))
	f.Add(seed(MsgRecord, encodeRecord(RecordMsg{Gen: 4, Seq: 9, FrontierGen: 4, FrontierRecords: 10, FrontierBytes: 512, Epoch: 7, Payload: []byte("record")}, ProtoVersion)))
	f.Add(seed(MsgHeartbeat, encodeHeartbeat(Heartbeat{FrontierGen: 4, FrontierRecords: 10, FrontierBytes: 512, Epoch: 7}, ProtoVersion)))
	f.Add(seed(MsgRecord, encodeRecord(RecordMsg{Gen: 4, Seq: 9, FrontierGen: 4, FrontierRecords: 10, FrontierBytes: 512, Payload: []byte("record")}, 2)))
	f.Add(seed(MsgHeartbeat, encodeHeartbeat(Heartbeat{FrontierGen: 4, FrontierRecords: 10, FrontierBytes: 512}, 2)))
	// Ack interleaved with a heartbeat: exact boundary consumption both ways.
	f.Add(append(seed(MsgAck, encodeAck(Ack{Gen: 1, Records: 1, Bytes: 64})), seed(MsgHeartbeat, encodeHeartbeat(Heartbeat{FrontierGen: 1, FrontierRecords: 2}, ProtoVersion))...))
	// Two frames back to back: the reader must consume exact boundaries.
	f.Add(append(seed(MsgSnapEnd, nil), seed(MsgHeartbeat, encodeHeartbeat(Heartbeat{}, ProtoVersion))...))
	// Corrupt variants: flipped payload byte, flipped length, truncation.
	good := seed(MsgRecord, encodeRecord(RecordMsg{Gen: 1, Seq: 0, Payload: []byte("x")}, ProtoVersion))
	flip := append([]byte(nil), good...)
	flip[len(flip)-1] ^= 0x40
	f.Add(flip)
	hdr := append([]byte(nil), good...)
	hdr[0] ^= 0x01
	f.Add(hdr)
	f.Add(good[:len(good)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, body, err := readMsg(r)
			if err != nil {
				if errors.Is(err, io.EOF) {
					return // clean end of stream
				}
				var pe *ProtocolError
				if !errors.As(err, &pe) {
					t.Fatalf("unattributed read error: %v", err)
				}
				if pe.Detail == "" {
					t.Fatalf("protocol error with empty detail: %v", pe)
				}
				return // attributed: the follower reconnects
			}
			// A frame passed both CRCs; its body decoder must still never
			// panic, and must attribute any structural failure.
			var derr error
			switch typ {
			case MsgHello:
				_, derr = decodeHello(body)
			case MsgWelcome:
				_, derr = decodeWelcome(body)
			case MsgSnapBegin:
				_, derr = decodeSnapBegin(body)
			case MsgRecord:
				// Record and heartbeat framing is version-dependent (the
				// epoch rides only on v3 links), so both interpretations
				// must hold the no-panic / attributed-error invariant.
				_, e2 := decodeRecord(body, 2)
				_, e3 := decodeRecord(body, ProtoVersion)
				derr = errors.Join(e2, e3)
			case MsgHeartbeat:
				_, e2 := decodeHeartbeat(body, 2)
				_, e3 := decodeHeartbeat(body, ProtoVersion)
				derr = errors.Join(e2, e3)
			case MsgAck:
				_, derr = decodeAck(body)
			case MsgSnapChunk, MsgSnapEnd, MsgError:
				// raw bodies, nothing to decode
			default:
				// Unknown type: the session layer rejects it; fine here.
			}
			if derr != nil {
				var pe *ProtocolError
				if !errors.As(derr, &pe) {
					t.Fatalf("unattributed %s decode error: %v", typ, derr)
				}
				return
			}
		}
	})
}

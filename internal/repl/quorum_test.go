package repl

// Quorum unit tests: the commit gate (WaitCommitted) against real links —
// released by follower acks, failed with ErrQuorumLost when nobody acks,
// degraded-sticky-then-healed with DegradeToAsync, and negotiated down to
// async for protocol-v1 followers. Plus the follower-side link robustness
// satellites: stall detection on a frozen link and injectable reconnect
// jitter.

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ackCallbacks extends the collector with a durable-ack report so it can
// count toward a sync quorum (the collector applies in memory, so its
// "durable" position is simply its applied position).
func ackCallbacks(col *collector) Callbacks {
	cb := col.callbacks()
	cb.Ack = func() (uint64, uint64, uint64) {
		col.mu.Lock()
		defer col.mu.Unlock()
		return col.pos.gen, col.pos.seq, 0
	}
	return cb
}

// startAckFollower runs an acking (v2) follower client against addr,
// returning the client and a stop func.
func startAckFollower(t *testing.T, addr string, col *collector) (*Client, func()) {
	t.Helper()
	client := New(Config{Addr: addr, BackoffMin: time.Millisecond, BackoffMax: 20 * time.Millisecond, Logger: quietLogger()}, ackCallbacks(col))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); client.Run(ctx) }()
	stop := func() {
		cancel()
		<-done
	}
	return client, stop
}

// TestQuorumWaitReleasedByAck blocks a commit gate with no follower
// attached, then lets a durably-acking follower connect: the wait must
// release as soon as the ack covering the commit arrives, well before the
// ack timeout.
func TestQuorumWaitReleasedByAck(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 3; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	p := NewPrimary(s, PrimaryConfig{
		HeartbeatEvery: 20 * time.Millisecond,
		SyncReplicas:   1,
		AckTimeout:     30 * time.Second, // the test must finish by ack, not timeout
		Logger:         quietLogger(),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = p.Serve(ln) }()
	t.Cleanup(func() { _ = p.Close() })

	fr := s.Frontier()
	gateDone := make(chan error, 1)
	go func() { gateDone <- p.WaitCommitted(fr.Gen, fr.Records) }()
	select {
	case err := <-gateDone:
		t.Fatalf("quorum wait released with no follower attached: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	col := &collector{}
	_, stop := startAckFollower(t, ln.Addr().String(), col)
	defer stop()

	select {
	case err := <-gateDone:
		if err != nil {
			t.Fatalf("quorum wait after follower ack: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("quorum wait never released by the follower's ack")
	}

	// The link's ack position is visible in primary stats.
	waitFor(t, "link ack stats", func() bool {
		st := p.Stats()
		return len(st.Links) == 1 && st.Links[0].SyncEligible &&
			st.Links[0].AckGen == fr.Gen && st.Links[0].AckRecords >= uint64(fr.Records) &&
			st.Links[0].AckLagRecords == 0 && st.Links[0].SecsSinceAck >= 0
	})
	if st := p.Stats(); st.QuorumWaits == 0 || st.QuorumTimeouts != 0 || st.Degraded {
		t.Fatalf("quorum counters off: %+v", st)
	}
}

// TestQuorumLostWithoutFollower is the no-degrade contract: with nobody
// acking, the gate must fail with a typed, wrapped ErrQuorumLost after the
// ack timeout — never block a writer indefinitely.
func TestQuorumLostWithoutFollower(t *testing.T) {
	s := newTestStore(t)
	if err := s.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	p := NewPrimary(s, PrimaryConfig{SyncReplicas: 1, AckTimeout: 30 * time.Millisecond, Logger: quietLogger()})
	t.Cleanup(func() { _ = p.Close() })

	fr := s.Frontier()
	start := time.Now()
	err := p.WaitCommitted(fr.Gen, fr.Records)
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("want ErrQuorumLost, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("quorum wait took %s; the timeout did not bound it", elapsed)
	}
	if st := p.Stats(); st.QuorumTimeouts != 1 || st.Degraded {
		t.Fatalf("after quorum loss without degrade: %+v", st)
	}
}

// TestDegradeToAsyncStickyAndHeals: with DegradeToAsync, a lost quorum
// commits locally and raises the sticky degraded flag; every later commit
// passes without waiting; and the flag clears only once a follower's acks
// reach the durable frontier again.
func TestDegradeToAsyncStickyAndHeals(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 2; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	p := NewPrimary(s, PrimaryConfig{
		HeartbeatEvery: 20 * time.Millisecond,
		SyncReplicas:   1,
		AckTimeout:     30 * time.Millisecond,
		DegradeToAsync: true,
		Logger:         quietLogger(),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = p.Serve(ln) }()
	t.Cleanup(func() { _ = p.Close() })

	fr := s.Frontier()
	if err := p.WaitCommitted(fr.Gen, fr.Records); err != nil {
		t.Fatalf("degrade-to-async commit failed: %v", err)
	}
	if !p.Degraded() {
		t.Fatal("degraded flag not raised after quorum timeout")
	}
	// Sticky: the next commit must pass immediately, not wait out a fresh
	// timeout window per write.
	start := time.Now()
	if err := p.WaitCommitted(fr.Gen, fr.Records); err != nil {
		t.Fatalf("commit while degraded: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("degraded commit waited %s; degraded mode must skip the quorum wait", elapsed)
	}

	// A follower catches up and acks the frontier: the flag heals.
	col := &collector{}
	_, stop := startAckFollower(t, ln.Addr().String(), col)
	defer stop()
	waitFor(t, "degraded flag to heal", func() bool { return !p.Degraded() })
	if err := p.WaitCommitted(fr.Gen, fr.Records); err != nil {
		t.Fatalf("commit after heal: %v", err)
	}
}

// TestV1FollowerNegotiatesDownToAsync pins a follower to protocol version
// 1 against a v2 primary: the stream must work end to end (records apply),
// but the link never acks, is not sync-eligible, and cannot satisfy a
// quorum — exactly how a pre-upgrade follower behaves during a rolling
// deploy.
func TestV1FollowerNegotiatesDownToAsync(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 4; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	p := NewPrimary(s, PrimaryConfig{
		HeartbeatEvery: 20 * time.Millisecond,
		SyncReplicas:   1,
		AckTimeout:     50 * time.Millisecond,
		Logger:         quietLogger(),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = p.Serve(ln) }()
	t.Cleanup(func() { _ = p.Close() })

	col := &collector{}
	// Version 1, with an Ack callback wired: the version gate alone must
	// suppress acking.
	cb := ackCallbacks(col)
	client := New(Config{Addr: ln.Addr().String(), Version: 1, BackoffMin: time.Millisecond, Logger: quietLogger()}, cb)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); client.Run(ctx) }()
	defer func() { cancel(); <-done }()

	waitFor(t, "v1 catch-up", atLeast(col, 4))
	for i, rec := range col.recorded() {
		if want := testRecord(i); rec.Alias != want.Alias {
			t.Fatalf("v1 record %d diverged: %q", i, rec.Alias)
		}
	}
	if st := client.Stats(); st.AcksSent != 0 {
		t.Fatalf("v1 follower sent %d acks; the downgrade must suppress them", st.AcksSent)
	}
	waitFor(t, "v1 link stats", func() bool { return len(p.Stats().Links) == 1 })
	if l := p.Stats().Links[0]; l.Version != 1 || l.SyncEligible || l.SecsSinceAck != -1 {
		t.Fatalf("v1 link state: %+v", l)
	}

	// A v1-only fleet can never satisfy a sync quorum: the gate must time
	// out with the typed error rather than count the async link.
	fr := s.Frontier()
	if err := p.WaitCommitted(fr.Gen, fr.Records); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("quorum over v1-only links: want ErrQuorumLost, got %v", err)
	}
}

// freezeProxy forwards TCP both ways but can freeze the primary→follower
// direction without closing the connection — the exact failure mode of a
// half-dead link (NAT timeout, pulled cable) that only a read deadline can
// detect.
type freezeProxy struct {
	ln     net.Listener
	target string
	frozen atomic.Bool

	mu    sync.Mutex
	conns []net.Conn
}

func newFreezeProxy(t *testing.T, target string) *freezeProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &freezeProxy{ln: ln, target: target}
	go p.acceptLoop()
	t.Cleanup(p.close)
	return p
}

func (p *freezeProxy) addr() string { return p.ln.Addr().String() }

func (p *freezeProxy) close() {
	_ = p.ln.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		_ = c.Close()
	}
}

func (p *freezeProxy) acceptLoop() {
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			_ = down.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, down, up)
		p.mu.Unlock()
		go func() { _, _ = io.Copy(up, down) }() // follower→primary: never frozen
		go p.copyFreezable(down, up)
	}
}

// copyFreezable forwards primary→follower until the link dies, pausing
// (without closing) while the proxy is frozen.
func (p *freezeProxy) copyFreezable(down, up net.Conn) {
	buf := make([]byte, 4096)
	for {
		if p.frozen.Load() {
			time.Sleep(time.Millisecond)
			continue
		}
		_ = up.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
		n, err := up.Read(buf)
		if n > 0 {
			if p.frozen.Load() {
				continue // swallow bytes read during the freeze race
			}
			if _, werr := down.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
	}
}

// TestStallDetectionReconnects freezes an established link mid-stream: no
// FIN, no RST, just silence. The follower's rolling read deadline must
// notice the missing heartbeats, tear the session down, and redial; after
// the thaw it must converge on new records.
func TestStallDetectionReconnects(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 3; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	_, addr := startPrimary(t, s) // 20ms heartbeats
	proxy := newFreezeProxy(t, addr)

	col := &collector{}
	client := New(Config{
		Addr:         proxy.addr(),
		StallTimeout: 150 * time.Millisecond,
		BackoffMin:   time.Millisecond,
		BackoffMax:   10 * time.Millisecond,
		Logger:       quietLogger(),
	}, col.callbacks())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); client.Run(ctx) }()
	defer func() { cancel(); <-done }()

	waitFor(t, "catch-up through proxy", atLeast(col, 3))
	dials := client.Stats().Dials

	proxy.frozen.Store(true)
	waitFor(t, "stall-triggered redial", func() bool { return client.Stats().Dials > dials })
	proxy.frozen.Store(false)

	for i := 3; i < 6; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "post-thaw convergence", atLeast(col, 6))
	for i, rec := range col.recorded() {
		if want := testRecord(i); rec.Alias != want.Alias {
			t.Fatalf("record %d diverged across the stall: %q", i, rec.Alias)
		}
	}
}

// TestReconnectBackoffJitter injects a deterministic jitter source and
// checks every reconnect sleep consults it — the ±20% spread is what keeps
// a follower fleet from redialing a restarted primary in lockstep.
func TestReconnectBackoffJitter(t *testing.T) {
	// A listener that is immediately closed: every dial fails fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	var calls atomic.Uint64
	col := &collector{}
	client := New(Config{
		Addr:       addr,
		BackoffMin: time.Millisecond,
		BackoffMax: 2 * time.Millisecond,
		Jitter: func() float64 {
			calls.Add(1)
			return 0.5 // deterministic mid-range: sleep = backoff exactly
		},
		Logger: quietLogger(),
	}, col.callbacks())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); client.Run(ctx) }()
	defer func() { cancel(); <-done }()

	waitFor(t, "jittered retries", func() bool { return calls.Load() >= 3 })
	if st := client.Stats(); st.Connected || st.LastError == "" {
		t.Fatalf("expected failed dials behind the jittered sleeps: %+v", st)
	}
}

// Package repl streams committed WAL frames from a primary engine to
// read-only followers over a length-prefixed TCP protocol.
//
// The wire format reuses the WAL's framing discipline: every message is a
// 12-byte header — payload length (u32 little endian), CRC32C of those 4
// length bytes, CRC32C of the payload — followed by the payload. The first
// payload byte is the message type; the rest is type-specific,
// varint-encoded. Checksums make every byte of the stream authenticated:
// corruption anywhere yields an attributed *ProtocolError, and the
// follower's response to any link error is always the same safe move —
// drop the connection and reconnect from its last applied position.
//
// A session: the follower dials and sends Hello carrying the protocol
// magic, version, and its applied position (generation, record count). The
// primary answers Welcome, either resuming the record stream from that
// position or announcing a snapshot bootstrap (SnapBegin / SnapChunk… /
// SnapEnd, after which records restart at the snapshot's generation,
// sequence 0). Record messages carry the generation, sequence, payload,
// and the primary's current durable frontier (so the follower can report
// lag); Heartbeat keeps the frontier fresh on an idle link. Generation
// rotations are implicit: after the last record of generation G, the next
// record arrives as (G+1, 0) — a fully caught-up follower crosses a
// checkpoint without re-bootstrapping.
//
// Protocol version 2 (PRCREPL2) adds the follower→primary Ack frame: the
// follower reports its durable-applied position, and a primary configured
// with SyncReplicas > 0 releases each group commit only once a quorum of
// followers has acked at-or-past it. The handshake negotiates down, so a
// version-1 follower still streams — it just never counts toward a quorum.
//
// Protocol version 3 (PRCREPL3) adds the failover fencing epoch: the
// follower's Hello carries its locally persisted epoch, and the primary
// stamps its own epoch on Welcome and on every Record and Heartbeat. Both
// sides compare on every frame: a primary that sees a follower at a higher
// epoch has been deposed (it rejects the link and fences itself); a
// follower that sees a primary at a lower epoch refuses to follow it; and
// a follower arriving with a lower epoch is forced through a snapshot
// bootstrap, which truncates any diverged, unacked WAL suffix it may carry
// from its previous life as a primary. Version 1/2 peers negotiate down
// and see no epoch fields at all.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic opens every version-1 Hello; a server can reject a stray client on
// byte one. Magic2 and Magic3 are the version-2 and version-3 spellings.
// All magics are 8 bytes, so the decoder slices the same prefix either way.
const (
	Magic  = "PRCREPL1"
	Magic2 = "PRCREPL2"
	Magic3 = "PRCREPL3"
)

// ProtoVersion is the newest protocol this build speaks; MinProtoVersion
// is the oldest it still accepts. The handshake negotiates down: a primary
// answers a version-1 Hello with a version-1 Welcome and treats the
// follower as async-only (version 1 has no MsgAck, so it can never count
// toward a synchronous-replication quorum). Version 2 adds the
// follower→primary Ack frame and a heartbeat-interval field in Welcome.
// Version 3 adds the failover fencing epoch to Hello, Welcome, Record, and
// Heartbeat; a version-1/2 peer sees none of the epoch fields and never
// participates in fencing.
const (
	ProtoVersion    = 3
	MinProtoVersion = 1
)

// maxMsgPayload caps one message. Snapshots are chunked well below it;
// WAL records are capped far lower by the WAL's own frame limit. A header
// announcing more than this is corruption, not a large message.
const maxMsgPayload = 64 << 20

// snapChunkSize is how much snapshot a single SnapChunk carries.
const snapChunkSize = 256 << 10

// msgHeaderSize mirrors the WAL frame header: length, CRC(length),
// CRC(payload).
const msgHeaderSize = 12

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// MsgType tags a protocol message (first payload byte).
type MsgType uint8

// The protocol messages.
const (
	MsgHello MsgType = iota + 1
	MsgWelcome
	MsgSnapBegin
	MsgSnapChunk
	MsgSnapEnd
	MsgRecord
	MsgHeartbeat
	MsgError
	MsgAck
)

// String names the message type for diagnostics.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgWelcome:
		return "welcome"
	case MsgSnapBegin:
		return "snap-begin"
	case MsgSnapChunk:
		return "snap-chunk"
	case MsgSnapEnd:
		return "snap-end"
	case MsgRecord:
		return "record"
	case MsgHeartbeat:
		return "heartbeat"
	case MsgError:
		return "error"
	case MsgAck:
		return "ack"
	default:
		return fmt.Sprintf("msg(%d)", uint8(t))
	}
}

// ProtocolError attributes a wire-level failure: a bad checksum, a
// truncated field, an impossible length. It always means "drop the link
// and reconnect" — never "guess and continue".
type ProtocolError struct {
	Msg    MsgType // message being decoded (0 when the header itself failed)
	Detail string
}

func (e *ProtocolError) Error() string {
	if e.Msg == 0 {
		return fmt.Sprintf("repl: protocol error: %s", e.Detail)
	}
	return fmt.Sprintf("repl: protocol error in %s message: %s", e.Msg, e.Detail)
}

// ErrInjectCorrupt is a faultinject sentinel for the repl.send site: the
// send path, on seeing it, flips a byte of the frame instead of failing —
// producing genuine mid-frame wire corruption for the receiver to detect.
var ErrInjectCorrupt = errors.New("repl: inject wire corruption")

// Hello is the follower's opening message. Epoch (version ≥ 3 only) is the
// follower's locally persisted fencing epoch: a primary seeing a higher
// epoch than its own has been deposed; one seeing a lower epoch forces a
// snapshot bootstrap to truncate any diverged suffix the follower carries.
type Hello struct {
	Version uint64
	Gen     uint64 // applied generation (0: nothing applied, bootstrap me)
	Records uint64 // records applied within Gen
	Epoch   uint64 // follower's fencing epoch (0 below version 3)
}

// Welcome is the primary's handshake answer. HeartbeatMS (version ≥ 2
// only) tells the follower how often to expect traffic on an idle link, so
// it can size its read-stall deadline. Epoch (version ≥ 3 only) is the
// primary's fencing epoch; the follower adopts a higher one and refuses a
// lower one.
type Welcome struct {
	Version     uint64
	Snapshot    bool   // true: a snapshot bootstrap follows before records
	Gen         uint64 // generation the stream will continue in
	Records     uint64 // sequence the first record will carry
	HeartbeatMS uint64 // primary's heartbeat interval in ms (0 on version 1)
	Epoch       uint64 // primary's fencing epoch (0 below version 3)
}

// Ack is the follower's durable-applied position (version ≥ 2): Records
// frames of generation Gen — Bytes bytes of its local WAL — are on the
// follower's disk (or applied in memory, for a diskless follower).
type Ack struct {
	Gen     uint64
	Records uint64
	Bytes   uint64
}

// SnapBegin announces a snapshot transfer.
type SnapBegin struct {
	Gen  uint64 // generation the snapshot establishes
	Size uint64 // total snapshot bytes across the chunks
}

// RecordMsg carries one WAL frame payload plus the primary's durable
// frontier at send time (for follower lag accounting). Epoch (version ≥ 3
// only) re-stamps the primary's fencing epoch on every frame, so a
// follower detects a stale primary even mid-stream.
type RecordMsg struct {
	Gen             uint64
	Seq             uint64 // record index within Gen (0-based)
	FrontierGen     uint64
	FrontierRecords uint64
	FrontierBytes   uint64
	Epoch           uint64 // primary's fencing epoch (0 below version 3)
	Payload         []byte
}

// Heartbeat refreshes the follower's view of the primary frontier on an
// idle link, and (version ≥ 3) re-stamps the primary's fencing epoch.
type Heartbeat struct {
	FrontierGen     uint64
	FrontierRecords uint64
	FrontierBytes   uint64
	Epoch           uint64 // primary's fencing epoch (0 below version 3)
}

// writeMsg frames one message onto w: header, then typ+body.
func writeMsg(w io.Writer, typ MsgType, body []byte) error {
	payload := make([]byte, 0, 1+len(body))
	payload = append(payload, byte(typ))
	payload = append(payload, body...)
	if len(payload) > maxMsgPayload {
		return &ProtocolError{Msg: typ, Detail: fmt.Sprintf("payload %d exceeds limit %d", len(payload), maxMsgPayload)}
	}
	frame := frameMsg(payload)
	_, err := w.Write(frame)
	return err
}

// frameMsg prefixes payload with the checksummed header.
func frameMsg(payload []byte) []byte {
	frame := make([]byte, msgHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(frame[0:4], castagnoli))
	binary.LittleEndian.PutUint32(frame[8:12], crc32.Checksum(payload, castagnoli))
	copy(frame[msgHeaderSize:], payload)
	return frame
}

// readMsg reads one message from r, verifying both checksums. The
// returned payload excludes the type byte and is owned by the caller. A
// clean EOF before any header byte returns io.EOF; everything else
// short is an attributed error. Payload memory is grown in steps as bytes
// actually arrive, so a corrupt header cannot demand a 64 MiB
// allocation from a 20-byte stream.
func readMsg(r io.Reader) (MsgType, []byte, error) {
	var hdr [msgHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, &ProtocolError{Detail: fmt.Sprintf("truncated header: %v", err)}
	}
	plen := binary.LittleEndian.Uint32(hdr[0:4])
	lenCRC := binary.LittleEndian.Uint32(hdr[4:8])
	payCRC := binary.LittleEndian.Uint32(hdr[8:12])
	if got := crc32.Checksum(hdr[0:4], castagnoli); got != lenCRC {
		return 0, nil, &ProtocolError{Detail: fmt.Sprintf("length checksum mismatch (stored %08x, computed %08x)", lenCRC, got)}
	}
	if plen == 0 {
		return 0, nil, &ProtocolError{Detail: "empty payload (no message type)"}
	}
	if plen > maxMsgPayload {
		return 0, nil, &ProtocolError{Detail: fmt.Sprintf("payload %d exceeds limit %d", plen, maxMsgPayload)}
	}
	payload := make([]byte, 0, min(int(plen), snapChunkSize+64))
	for len(payload) < int(plen) {
		step := int(plen) - len(payload)
		if step > snapChunkSize {
			step = snapChunkSize
		}
		payload = append(payload, make([]byte, step)...)
		if _, err := io.ReadFull(r, payload[len(payload)-step:]); err != nil {
			return 0, nil, &ProtocolError{Detail: fmt.Sprintf("truncated payload (%d of %d bytes): %v", len(payload)-step, plen, err)}
		}
	}
	if got := crc32.Checksum(payload, castagnoli); got != payCRC {
		return 0, nil, &ProtocolError{Detail: fmt.Sprintf("payload checksum mismatch (stored %08x, computed %08x)", payCRC, got)}
	}
	return MsgType(payload[0]), payload[1:], nil
}

// enc helpers: all message bodies are uvarint/bytes sequences.

func appendUvarints(dst []byte, vs ...uint64) []byte {
	for _, v := range vs {
		dst = binary.AppendUvarint(dst, v)
	}
	return dst
}

// bodyReader decodes a message body, remembering the type for error
// attribution.
type bodyReader struct {
	typ MsgType
	b   []byte
	err error
}

func (d *bodyReader) uvarint(name string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = &ProtocolError{Msg: d.typ, Detail: fmt.Sprintf("bad %s varint", name)}
		return 0
	}
	d.b = d.b[n:]
	return v
}

// rest takes every remaining byte (a record payload or snapshot chunk).
func (d *bodyReader) rest() []byte {
	b := d.b
	d.b = nil
	return b
}

func (d *bodyReader) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return &ProtocolError{Msg: d.typ, Detail: fmt.Sprintf("%d trailing bytes", len(d.b))}
	}
	return nil
}

// Message encoders/decoders. Decoders validate every field and reject
// trailing garbage: a decoded message is exactly what the encoder
// produced.

func encodeHello(h Hello) []byte {
	magic := Magic
	switch {
	case h.Version >= 3:
		magic = Magic3
	case h.Version == 2:
		magic = Magic2
	}
	body := append([]byte(nil), magic...)
	body = appendUvarints(body, h.Version, h.Gen, h.Records)
	if h.Version >= 3 {
		body = appendUvarints(body, h.Epoch)
	}
	return body
}

func decodeHello(body []byte) (Hello, error) {
	if len(body) < len(Magic) ||
		(string(body[:len(Magic)]) != Magic && string(body[:len(Magic2)]) != Magic2 &&
			string(body[:len(Magic3)]) != Magic3) {
		return Hello{}, &ProtocolError{Msg: MsgHello, Detail: "bad magic"}
	}
	d := &bodyReader{typ: MsgHello, b: body[len(Magic):]}
	h := Hello{
		Version: d.uvarint("version"),
		Gen:     d.uvarint("gen"),
		Records: d.uvarint("records"),
	}
	if d.err == nil && h.Version >= 3 {
		h.Epoch = d.uvarint("epoch")
	}
	return h, d.done()
}

// encodeWelcome emits the wire form the announced version defines: the
// HeartbeatMS field exists only from version 2 on, the Epoch field only
// from version 3 on (an older follower rejects trailing bytes, so the
// primary speaks each follower's dialect).
func encodeWelcome(w Welcome) []byte {
	snap := uint64(0)
	if w.Snapshot {
		snap = 1
	}
	body := appendUvarints(nil, w.Version, snap, w.Gen, w.Records)
	if w.Version >= 2 {
		body = appendUvarints(body, w.HeartbeatMS)
	}
	if w.Version >= 3 {
		body = appendUvarints(body, w.Epoch)
	}
	return body
}

func decodeWelcome(body []byte) (Welcome, error) {
	d := &bodyReader{typ: MsgWelcome, b: body}
	w := Welcome{Version: d.uvarint("version")}
	switch snap := d.uvarint("snapshot"); snap {
	case 0:
	case 1:
		w.Snapshot = true
	default:
		if d.err == nil {
			d.err = &ProtocolError{Msg: MsgWelcome, Detail: fmt.Sprintf("bad snapshot flag %d", snap)}
		}
	}
	w.Gen = d.uvarint("gen")
	w.Records = d.uvarint("records")
	if d.err == nil && w.Version >= 2 {
		w.HeartbeatMS = d.uvarint("heartbeat ms")
	}
	if d.err == nil && w.Version >= 3 {
		w.Epoch = d.uvarint("epoch")
	}
	return w, d.done()
}

func encodeAck(a Ack) []byte {
	return appendUvarints(nil, a.Gen, a.Records, a.Bytes)
}

func decodeAck(body []byte) (Ack, error) {
	d := &bodyReader{typ: MsgAck, b: body}
	a := Ack{
		Gen:     d.uvarint("gen"),
		Records: d.uvarint("records"),
		Bytes:   d.uvarint("bytes"),
	}
	return a, d.done()
}

func encodeSnapBegin(s SnapBegin) []byte {
	return appendUvarints(nil, s.Gen, s.Size)
}

func decodeSnapBegin(body []byte) (SnapBegin, error) {
	d := &bodyReader{typ: MsgSnapBegin, b: body}
	s := SnapBegin{Gen: d.uvarint("gen"), Size: d.uvarint("size")}
	return s, d.done()
}

// encodeRecord/decodeRecord are version-parameterized: the Epoch uvarint
// sits between the frontier fields and the raw payload from version 3 on,
// and is absent below it (the payload is "the rest", so the field cannot
// be self-describing — both ends already agreed on a version at
// handshake).
func encodeRecord(r RecordMsg, version uint64) []byte {
	body := appendUvarints(nil, r.Gen, r.Seq, r.FrontierGen, r.FrontierRecords, r.FrontierBytes)
	if version >= 3 {
		body = appendUvarints(body, r.Epoch)
	}
	return append(body, r.Payload...)
}

func decodeRecord(body []byte, version uint64) (RecordMsg, error) {
	d := &bodyReader{typ: MsgRecord, b: body}
	r := RecordMsg{
		Gen:             d.uvarint("gen"),
		Seq:             d.uvarint("seq"),
		FrontierGen:     d.uvarint("frontier gen"),
		FrontierRecords: d.uvarint("frontier records"),
		FrontierBytes:   d.uvarint("frontier bytes"),
	}
	if version >= 3 {
		r.Epoch = d.uvarint("epoch")
	}
	if d.err != nil {
		return r, d.err
	}
	r.Payload = d.rest()
	return r, nil
}

func encodeHeartbeat(h Heartbeat, version uint64) []byte {
	body := appendUvarints(nil, h.FrontierGen, h.FrontierRecords, h.FrontierBytes)
	if version >= 3 {
		body = appendUvarints(body, h.Epoch)
	}
	return body
}

func decodeHeartbeat(body []byte, version uint64) (Heartbeat, error) {
	d := &bodyReader{typ: MsgHeartbeat, b: body}
	h := Heartbeat{
		FrontierGen:     d.uvarint("frontier gen"),
		FrontierRecords: d.uvarint("frontier records"),
		FrontierBytes:   d.uvarint("frontier bytes"),
	}
	if version >= 3 {
		h.Epoch = d.uvarint("epoch")
	}
	return h, d.done()
}

package repl

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"testing"
	"time"

	"precis/internal/faultinject"
	"precis/internal/storage"
	"precis/internal/wal"
)

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// --- protocol codec ---

func TestProtoRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	hello := Hello{Version: ProtoVersion, Gen: 7, Records: 900, Epoch: 4}
	welcome := Welcome{Version: ProtoVersion, Snapshot: true, Gen: 8, Records: 0, Epoch: 4}
	sb := SnapBegin{Gen: 8, Size: 4096}
	rec := RecordMsg{Gen: 8, Seq: 41, FrontierGen: 8, FrontierRecords: 100, FrontierBytes: 5000, Epoch: 4, Payload: []byte("payload-bytes")}
	hb := Heartbeat{FrontierGen: 8, FrontierRecords: 100, FrontierBytes: 5000, Epoch: 4}

	for _, m := range []struct {
		typ  MsgType
		body []byte
	}{
		{MsgHello, encodeHello(hello)},
		{MsgWelcome, encodeWelcome(welcome)},
		{MsgSnapBegin, encodeSnapBegin(sb)},
		{MsgSnapChunk, []byte("chunk")},
		{MsgSnapEnd, nil},
		{MsgRecord, encodeRecord(rec, ProtoVersion)},
		{MsgHeartbeat, encodeHeartbeat(hb, ProtoVersion)},
		{MsgError, []byte("boom")},
	} {
		if err := writeMsg(&buf, m.typ, m.body); err != nil {
			t.Fatalf("write %s: %v", m.typ, err)
		}
	}

	if typ, body, err := readMsg(&buf); err != nil || typ != MsgHello {
		t.Fatalf("read hello: %v (%s)", err, typ)
	} else if got, err := decodeHello(body); err != nil || got != hello {
		t.Fatalf("hello round trip: %+v, %v", got, err)
	}
	if typ, body, err := readMsg(&buf); err != nil || typ != MsgWelcome {
		t.Fatalf("read welcome: %v (%s)", err, typ)
	} else if got, err := decodeWelcome(body); err != nil || got != welcome {
		t.Fatalf("welcome round trip: %+v, %v", got, err)
	}
	if typ, body, err := readMsg(&buf); err != nil || typ != MsgSnapBegin {
		t.Fatalf("read snap-begin: %v (%s)", err, typ)
	} else if got, err := decodeSnapBegin(body); err != nil || got != sb {
		t.Fatalf("snap-begin round trip: %+v, %v", got, err)
	}
	if typ, body, err := readMsg(&buf); err != nil || typ != MsgSnapChunk || string(body) != "chunk" {
		t.Fatalf("snap-chunk round trip: %v %s %q", err, typ, body)
	}
	if typ, body, err := readMsg(&buf); err != nil || typ != MsgSnapEnd || len(body) != 0 {
		t.Fatalf("snap-end round trip: %v %s %q", err, typ, body)
	}
	if typ, body, err := readMsg(&buf); err != nil || typ != MsgRecord {
		t.Fatalf("read record: %v (%s)", err, typ)
	} else {
		got, err := decodeRecord(body, ProtoVersion)
		if err != nil {
			t.Fatalf("record decode: %v", err)
		}
		if got.Gen != rec.Gen || got.Seq != rec.Seq || got.FrontierGen != rec.FrontierGen ||
			got.FrontierRecords != rec.FrontierRecords || got.FrontierBytes != rec.FrontierBytes ||
			got.Epoch != rec.Epoch || !bytes.Equal(got.Payload, rec.Payload) {
			t.Fatalf("record round trip: %+v", got)
		}
	}
	if typ, body, err := readMsg(&buf); err != nil || typ != MsgHeartbeat {
		t.Fatalf("read heartbeat: %v (%s)", err, typ)
	} else if got, err := decodeHeartbeat(body, ProtoVersion); err != nil || got != hb {
		t.Fatalf("heartbeat round trip: %+v, %v", got, err)
	}
	if typ, body, err := readMsg(&buf); err != nil || typ != MsgError || string(body) != "boom" {
		t.Fatalf("error round trip: %v %s %q", err, typ, body)
	}
}

// TestProtoCorruptionAttributed flips every byte of a framed message; each
// flip must surface as a *ProtocolError (or a version/magic rejection at
// decode), never a silent success with different content.
func TestProtoCorruptionAttributed(t *testing.T) {
	var buf bytes.Buffer
	if err := writeMsg(&buf, MsgRecord, encodeRecord(RecordMsg{Gen: 3, Seq: 9, Payload: []byte("precis")}, ProtoVersion)); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for off := 0; off < len(frame); off++ {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), frame...)
			mut[off] ^= bit
			typ, body, err := readMsg(bytes.NewReader(mut))
			if err == nil {
				// The CRCs authenticate every byte; a flip that still reads
				// must decode to the identical message — impossible, so any
				// success is a hole in the checksums.
				t.Fatalf("flip at %d (bit %02x) read back cleanly as %s %q", off, bit, typ, body)
			}
			var pe *ProtocolError
			if !errors.As(err, &pe) {
				t.Fatalf("flip at %d (bit %02x): error is not a ProtocolError: %v", off, bit, err)
			}
		}
	}
}

func TestReadMsgTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := writeMsg(&buf, MsgHeartbeat, encodeHeartbeat(Heartbeat{FrontierGen: 1}, ProtoVersion)); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	if _, _, err := readMsg(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: want io.EOF, got %v", err)
	}
	for cut := 1; cut < len(frame); cut++ {
		_, _, err := readMsg(bytes.NewReader(frame[:cut]))
		var pe *ProtocolError
		if !errors.As(err, &pe) {
			t.Fatalf("cut at %d: want ProtocolError, got %v", cut, err)
		}
	}
}

// TestProtoEpochVersionGating pins the wire shapes across the v2/v3
// boundary: a v2 frame carries no epoch and decodes to epoch 0 at either
// version's framing, while a v3 frame decoded with v2 framing is rejected
// (the epoch bytes would otherwise be silently folded into the payload).
func TestProtoEpochVersionGating(t *testing.T) {
	rec := RecordMsg{Gen: 2, Seq: 5, FrontierGen: 2, FrontierRecords: 6, FrontierBytes: 99, Epoch: 9, Payload: []byte("p")}
	v2 := encodeRecord(rec, 2)
	got, err := decodeRecord(v2, 2)
	if err != nil {
		t.Fatalf("v2 record decode: %v", err)
	}
	if got.Epoch != 0 || !bytes.Equal(got.Payload, rec.Payload) {
		t.Fatalf("v2 record carried an epoch: %+v", got)
	}
	// v2 bytes under v3 framing: the first payload byte is consumed as the
	// epoch uvarint, so the payload must differ — never silently equal.
	if got3, err := decodeRecord(v2, ProtoVersion); err == nil && bytes.Equal(got3.Payload, rec.Payload) && got3.Epoch == rec.Epoch {
		t.Fatalf("v2 record bytes decoded identically under v3 framing: %+v", got3)
	}

	hb := Heartbeat{FrontierGen: 2, FrontierRecords: 6, FrontierBytes: 99, Epoch: 9}
	if got, err := decodeHeartbeat(encodeHeartbeat(hb, 2), 2); err != nil || got.Epoch != 0 {
		t.Fatalf("v2 heartbeat: %+v, %v", got, err)
	}
	// A v3 heartbeat decoded with v2 framing has a trailing epoch uvarint.
	if _, err := decodeHeartbeat(encodeHeartbeat(hb, ProtoVersion), 2); err == nil {
		t.Fatal("v3 heartbeat accepted under v2 framing despite trailing epoch bytes")
	}

	// Hello and Welcome are self-describing: the epoch field rides only
	// when the encoded version is >= 3, and v2 frames keep the v2 magic.
	h2 := Hello{Version: 2, Gen: 1, Records: 2, Epoch: 9}
	if got, err := decodeHello(encodeHello(h2)); err != nil || got.Epoch != 0 {
		t.Fatalf("v2 hello grew an epoch: %+v, %v", got, err)
	}
	w2 := Welcome{Version: 2, Gen: 1, HeartbeatMS: 500, Epoch: 9}
	if got, err := decodeWelcome(encodeWelcome(w2)); err != nil || got.Epoch != 0 {
		t.Fatalf("v2 welcome grew an epoch: %+v, %v", got, err)
	}
}

// TestV2ClientNegotiatesDown runs a follower that pins protocol version 2
// against a v3 primary: the primary must answer at version 2, never stamp
// epochs, and still stream to convergence — old followers keep working
// across a primary upgrade.
func TestV2ClientNegotiatesDown(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 5; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	p, addr := startPrimary(t, s)
	col := &collector{}
	cb := col.callbacks()
	observed := make(chan uint64, 16)
	cb.ObserveEpoch = func(epoch uint64) error {
		observed <- epoch
		return nil
	}
	client := New(Config{Addr: addr, Version: 2, Logger: quietLogger()}, cb)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); client.Run(ctx) }()
	waitFor(t, "v2 catch-up", atLeast(col, 5))
	select {
	case e := <-observed:
		t.Fatalf("v2 session observed an epoch stamp (%d)", e)
	default:
	}
	if st := p.Stats(); st.Followers != 1 {
		t.Fatalf("primary stats: %+v", st)
	}
	cancel()
	<-done
}

// --- end-to-end transport over a real Store ---

// testRecord logs one synonym record; synonyms are the simplest op with a
// payload we can assert on.
func testRecord(i int) wal.Record {
	return wal.Record{Op: wal.OpSynonym, Alias: fmt.Sprintf("alias-%d", i), Canonical: fmt.Sprintf("canon-%d", i)}
}

func newTestStore(t *testing.T) *wal.Store {
	t.Helper()
	s, rec, err := wal.Open(t.TempDir(), wal.Config{Fsync: wal.FsyncNever, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Data != nil {
		t.Fatal("fresh dir recovered data")
	}
	if err := s.Initialize(&wal.SnapshotData{DB: storage.NewDatabase("repl-test")}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// collector accumulates the streamed state like a follower would.
type collector struct {
	mu        sync.Mutex
	snapGen   uint64
	snapshots int
	records   []wal.Record
	pos       position
}

func (c *collector) callbacks() Callbacks {
	return Callbacks{
		Position: func() (uint64, uint64) {
			c.mu.Lock()
			defer c.mu.Unlock()
			return c.pos.gen, c.pos.seq
		},
		Snapshot: func(gen uint64, raw []byte) error {
			if _, err := wal.DecodeSnapshot("<stream>", raw); err != nil {
				return err
			}
			c.mu.Lock()
			defer c.mu.Unlock()
			c.snapGen = gen
			c.snapshots++
			c.records = c.records[:0]
			c.pos = position{gen: gen}
			return nil
		},
		Record: func(gen, seq uint64, payload []byte) error {
			rec, err := wal.DecodeRecord(payload)
			if err != nil {
				return err
			}
			c.mu.Lock()
			defer c.mu.Unlock()
			c.records = append(c.records, rec)
			c.pos = position{gen: gen, seq: seq + 1}
			return nil
		},
	}
}

func (c *collector) snapshotCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshots
}

func (c *collector) recorded() []wal.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]wal.Record(nil), c.records...)
}

func startPrimary(t *testing.T, s *wal.Store) (*Primary, string) {
	t.Helper()
	p := NewPrimary(s, PrimaryConfig{HeartbeatEvery: 20 * time.Millisecond, Logger: quietLogger()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = p.Serve(ln) }()
	t.Cleanup(func() { _ = p.Close() })
	return p, ln.Addr().String()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStreamBootstrapLiveAndRotation(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 5; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}

	p, addr := startPrimary(t, s)
	col := &collector{}
	client := New(Config{Addr: addr, Logger: quietLogger()}, col.callbacks())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	clientDone := make(chan struct{})
	go func() { defer close(clientDone); client.Run(ctx) }()

	// Bootstrap: snapshot of gen 1, then the 5 preexisting records.
	waitFor(t, "bootstrap catch-up", atLeast(col, 5))
	if col.snapshotCount() != 1 {
		t.Fatalf("bootstrap took %d snapshots, want 1", col.snapshotCount())
	}

	// Live streaming.
	for i := 5; i < 8; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "live records", atLeast(col, 8))

	// A checkpoint rotation mid-stream: the caught-up follower crosses it
	// without a new snapshot.
	if err := s.Checkpoint(&wal.SnapshotData{DB: storage.NewDatabase("repl-test")}); err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 11; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "post-rotation records", atLeast(col, 11))
	if col.snapshotCount() != 1 {
		t.Fatalf("rotation forced %d extra snapshot(s) on a caught-up follower", col.snapshotCount()-1)
	}
	got := col.recorded()
	for i, rec := range got {
		want := testRecord(i)
		if rec.Alias != want.Alias || rec.Canonical != want.Canonical {
			t.Fatalf("record %d: got %q->%q, want %q->%q", i, rec.Alias, rec.Canonical, want.Alias, want.Canonical)
		}
	}
	if st := client.Stats(); !st.Connected || st.Records == 0 || st.BytesReceived == 0 {
		t.Fatalf("client stats look dead: %+v", st)
	}
	if st := p.Stats(); st.Followers != 1 || st.SentRecords < 11 {
		t.Fatalf("primary stats: %+v", st)
	}

	cancel()
	<-clientDone
}

// atLeast is a waitFor condition: the collector holds >= n records.
func atLeast(col *collector, n int) func() bool {
	return func() bool { return len(col.recorded()) >= n }
}

// TestResumeFromPosition disconnects a follower, appends more records, and
// reconnects: the stream must resume exactly at the follower's position,
// with no snapshot and no duplicates.
func TestResumeFromPosition(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 4; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	p, addr := startPrimary(t, s)
	_ = p

	col := &collector{}
	ctx1, cancel1 := context.WithCancel(context.Background())
	c1 := New(Config{Addr: addr, Logger: quietLogger()}, col.callbacks())
	done1 := make(chan struct{})
	go func() { defer close(done1); c1.Run(ctx1) }()
	waitFor(t, "first catch-up", atLeast(col, 4))
	cancel1()
	<-done1

	for i := 4; i < 9; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	c2 := New(Config{Addr: addr, Logger: quietLogger()}, col.callbacks())
	done2 := make(chan struct{})
	go func() { defer close(done2); c2.Run(ctx2) }()
	waitFor(t, "resume catch-up", atLeast(col, 9))
	if col.snapshotCount() != 1 {
		t.Fatalf("resume re-bootstrapped (%d snapshots)", col.snapshotCount())
	}
	for i, rec := range col.recorded() {
		if want := testRecord(i); rec.Alias != want.Alias {
			t.Fatalf("record %d after resume: %q", i, rec.Alias)
		}
	}
	cancel2()
	<-done2
}

// TestFallenBehindFollowerRebootstraps reconnects a follower whose
// generation was checkpointed away; it must get a fresh snapshot, not an
// error loop.
func TestFallenBehindFollowerRebootstraps(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 3; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	p, addr := startPrimary(t, s)
	_ = p

	col := &collector{}
	ctx1, cancel1 := context.WithCancel(context.Background())
	c1 := New(Config{Addr: addr, Logger: quietLogger()}, col.callbacks())
	done1 := make(chan struct{})
	go func() { defer close(done1); c1.Run(ctx1) }()
	waitFor(t, "catch-up", atLeast(col, 3))
	cancel1()
	<-done1

	// Two rotations: the follower's generation file is gone.
	for r := 0; r < 2; r++ {
		if err := s.Checkpoint(&wal.SnapshotData{DB: storage.NewDatabase("repl-test")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(testRecord(100)); err != nil {
		t.Fatal(err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	c2 := New(Config{Addr: addr, Logger: quietLogger()}, col.callbacks())
	done2 := make(chan struct{})
	go func() { defer close(done2); c2.Run(ctx2) }()
	waitFor(t, "re-bootstrap", func() bool {
		recs := col.recorded()
		return col.snapshotCount() == 2 && len(recs) == 1 && recs[0].Alias == "alias-100"
	})
	cancel2()
	<-done2
}

// TestLinkFaultsReconnectAndConverge severs the link via every repl.*
// fault site — including mid-frame wire corruption — and requires the
// follower to reconverge every time.
func TestLinkFaultsReconnectAndConverge(t *testing.T) {
	defer faultinject.Deactivate()
	errSever := errors.New("injected sever")
	cases := []struct {
		name string
		site string
		err  error
	}{
		{"send-sever", faultinject.SiteReplSend, errSever},
		{"send-corrupt", faultinject.SiteReplSend, ErrInjectCorrupt},
		{"recv-sever", faultinject.SiteReplRecv, errSever},
		{"handshake-sever", faultinject.SiteReplHandshake, errSever},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestStore(t)
			for i := 0; i < 6; i++ {
				if err := s.Append(testRecord(i)); err != nil {
					t.Fatal(err)
				}
			}
			_, addr := startPrimary(t, s)
			col := &collector{}
			client := New(Config{Addr: addr, BackoffMin: time.Millisecond, BackoffMax: 20 * time.Millisecond, Logger: quietLogger()}, col.callbacks())
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan struct{})

			// Fire on every 3rd site call, 10 times total, starting before
			// the first connect so even the bootstrap is interrupted.
			faultinject.Activate(faultinject.NewPlan().Set(tc.site, faultinject.Rule{Err: tc.err, Every: 3, Limit: 10}))
			go func() { defer close(done); client.Run(ctx) }()

			waitFor(t, "converge under "+tc.name, atLeast(col, 6))
			faultinject.Deactivate()
			for i := 6; i < 9; i++ {
				if err := s.Append(testRecord(i)); err != nil {
					t.Fatal(err)
				}
			}
			waitFor(t, "post-fault records", atLeast(col, 9))
			for i, rec := range col.recorded() {
				if want := testRecord(i); rec.Alias != want.Alias {
					t.Fatalf("record %d diverged after %s: %q", i, tc.name, rec.Alias)
				}
			}
			cancel()
			<-done
		})
	}
}

package repl

// Automatic failover: a supervisor that watches a follower's replication
// progress and, when the primary goes silent, runs a deterministic
// election and promotes the winner. The election needs no extra protocol
// round — every candidate orders itself by durable state (epoch, then
// generation, then applied records), so with a full candidate list every
// node computes the same winner, and the epoch bump at promotion fences
// any node that voted on stale information.

import (
	"context"
	"log"
	"sync"
	"time"
)

// Candidate is one node's claim in an election, ordered by how much acked
// state it can prove it holds.
type Candidate struct {
	// ID names the node (e.g. its replication address); the final,
	// deterministic tiebreak is lexicographic on ID.
	ID string
	// Epoch is the node's fencing epoch; a higher epoch has strictly newer
	// information and always wins.
	Epoch uint64
	// Gen and Records are the node's durably applied WAL position — the
	// node holding the longest acked prefix must win, or promotion would
	// roll back acknowledged writes.
	Gen     uint64
	Records uint64
	// Priority is the operator's preference among equally caught-up nodes
	// (higher wins).
	Priority int
}

// Beats reports whether c wins an election against o. The order is total:
// epoch, then generation, then records, then priority, then lexically
// smaller ID — so every node with the same candidate list elects the same
// winner without exchanging votes.
func (c Candidate) Beats(o Candidate) bool {
	if c.Epoch != o.Epoch {
		return c.Epoch > o.Epoch
	}
	if c.Gen != o.Gen {
		return c.Gen > o.Gen
	}
	if c.Records != o.Records {
		return c.Records > o.Records
	}
	if c.Priority != o.Priority {
		return c.Priority > o.Priority
	}
	return c.ID < o.ID
}

// Elect returns the winning candidate. ok is false for an empty slate.
func Elect(cands []Candidate) (winner Candidate, ok bool) {
	for i, c := range cands {
		if i == 0 || c.Beats(winner) {
			winner = c
		}
	}
	return winner, len(cands) > 0
}

// SupervisorConfig tunes the heartbeat-loss detector.
type SupervisorConfig struct {
	// HeartbeatTimeout is how long replication progress may stall before
	// the primary is declared dead (0: 2s). A healthy primary heartbeats
	// idle links, so progress only stalls when the link is down and
	// reconnects are failing.
	HeartbeatTimeout time.Duration
	// PollEvery is the progress sampling interval (0: HeartbeatTimeout/4,
	// floored at 10ms).
	PollEvery time.Duration
	// Progress returns a counter that advances whenever the primary is
	// alive (typically the follower transport's bytes-received total).
	Progress func() uint64
	// Self returns this node's candidacy, sampled at detection time.
	Self func() Candidate
	// Peers returns the other known candidates. With an empty slate a
	// lone follower elects itself. Static configuration is fine: stale
	// positions cost only a suboptimal winner, never a rolled-back write,
	// because fencing is enforced by epoch, not by the election.
	Peers func() []Candidate
	// Promote converts this node to primary; called only when Self wins.
	// An error re-arms the detector for another attempt.
	Promote func() error
	// Logger receives detection and election notes; nil uses log.Default().
	Logger *log.Logger
}

// SupervisorStats counts detector activity.
type SupervisorStats struct {
	Detections uint64 `json:"detections"`
	Promotions uint64 `json:"promotions"`
	LastWinner string `json:"last_winner,omitempty"`
}

// Supervisor runs the detector loop. Start it on a follower; it stops
// itself after a successful promotion (the node is no longer following
// anyone) or when Stop is called.
type Supervisor struct {
	cfg SupervisorConfig
	log *log.Logger

	mu         sync.Mutex
	cancel     context.CancelFunc
	done       chan struct{}
	detections uint64
	promotions uint64
	lastWinner string
}

// NewSupervisor builds a supervisor; call Start to arm it.
func NewSupervisor(cfg SupervisorConfig) *Supervisor {
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 2 * time.Second
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = cfg.HeartbeatTimeout / 4
		if cfg.PollEvery < 10*time.Millisecond {
			cfg.PollEvery = 10 * time.Millisecond
		}
	}
	lg := cfg.Logger
	if lg == nil {
		lg = log.Default()
	}
	return &Supervisor{cfg: cfg, log: lg}
}

// Start arms the detector. Idempotent while running.
func (s *Supervisor) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.done = make(chan struct{})
	go s.run(ctx, s.done)
}

// Stop disarms the detector and waits for its goroutine to exit.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	cancel, done := s.cancel, s.done
	s.cancel, s.done = nil, nil
	s.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

// Stats snapshots the detector counters.
func (s *Supervisor) Stats() SupervisorStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SupervisorStats{Detections: s.detections, Promotions: s.promotions, LastWinner: s.lastWinner}
}

func (s *Supervisor) run(ctx context.Context, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(s.cfg.PollEvery)
	defer ticker.Stop()
	last := s.cfg.Progress()
	stalledFor := time.Duration(0)
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		if now := s.cfg.Progress(); now != last {
			last, stalledFor = now, 0
			continue
		}
		if stalledFor += s.cfg.PollEvery; stalledFor < s.cfg.HeartbeatTimeout {
			continue
		}
		// The primary has been silent a full timeout: elect.
		stalledFor = 0
		self := s.cfg.Self()
		slate := []Candidate{self}
		if s.cfg.Peers != nil {
			slate = append(slate, s.cfg.Peers()...)
		}
		winner, _ := Elect(slate)
		s.mu.Lock()
		s.detections++
		s.lastWinner = winner.ID
		s.mu.Unlock()
		if winner.ID != self.ID {
			s.log.Printf("repl: primary silent for %s; election winner is %s (epoch %d, pos %d/%d) — standing by",
				s.cfg.HeartbeatTimeout, winner.ID, winner.Epoch, winner.Gen, winner.Records)
			continue // re-arm: if the winner also fails, a later round falls to us
		}
		s.log.Printf("repl: primary silent for %s; this node (%s) won the election — promoting", s.cfg.HeartbeatTimeout, self.ID)
		if err := s.cfg.Promote(); err != nil {
			s.log.Printf("repl: auto-promotion failed: %v (detector re-armed)", err)
			continue
		}
		s.mu.Lock()
		s.promotions++
		s.mu.Unlock()
		return // promoted: nothing left to supervise
	}
}

package repl

// Unit tests for the election order and the heartbeat-loss supervisor.
// The election must be a total, deterministic order — every node with the
// same slate computes the same winner — and the supervisor must promote
// only after a full timeout of silence, stand by when a peer wins, and
// re-arm after a failed promotion.

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestCandidateBeatsTotalOrder(t *testing.T) {
	base := Candidate{ID: "b", Epoch: 2, Gen: 3, Records: 10, Priority: 1}
	cases := []struct {
		name string
		c    Candidate
		want bool // c.Beats(base)
	}{
		{"higher epoch beats longer log", Candidate{ID: "z", Epoch: 3}, true},
		{"lower epoch loses despite log", Candidate{ID: "a", Epoch: 1, Gen: 9, Records: 99, Priority: 9}, false},
		{"higher gen", Candidate{ID: "z", Epoch: 2, Gen: 4}, true},
		{"higher records", Candidate{ID: "z", Epoch: 2, Gen: 3, Records: 11}, true},
		{"lower records loses despite priority", Candidate{ID: "a", Epoch: 2, Gen: 3, Records: 9, Priority: 9}, false},
		{"higher priority", Candidate{ID: "z", Epoch: 2, Gen: 3, Records: 10, Priority: 2}, true},
		{"lexically smaller id wins the tie", Candidate{ID: "a", Epoch: 2, Gen: 3, Records: 10, Priority: 1}, true},
		{"lexically larger id loses the tie", Candidate{ID: "c", Epoch: 2, Gen: 3, Records: 10, Priority: 1}, false},
	}
	for _, tc := range cases {
		if got := tc.c.Beats(base); got != tc.want {
			t.Errorf("%s: %+v.Beats(base) = %v, want %v", tc.name, tc.c, got, tc.want)
		}
		// The order is total: for distinct candidates exactly one direction wins.
		if tc.c != base {
			if fwd, rev := tc.c.Beats(base), base.Beats(tc.c); fwd == rev {
				t.Errorf("%s: Beats is not antisymmetric (both directions = %v)", tc.name, fwd)
			}
		}
	}
}

func TestElectDeterministic(t *testing.T) {
	cands := []Candidate{
		{ID: "slow", Epoch: 1, Gen: 1, Records: 3},
		{ID: "caught-up", Epoch: 1, Gen: 1, Records: 10},
		{ID: "old-epoch-long-log", Epoch: 1, Gen: 2, Records: 1},
		{ID: "new-epoch", Epoch: 2, Records: 0},
	}
	// Every rotation of the slate elects the same winner.
	for shift := range cands {
		rotated := append(append([]Candidate{}, cands[shift:]...), cands[:shift]...)
		winner, ok := Elect(rotated)
		if !ok || winner.ID != "new-epoch" {
			t.Fatalf("rotation %d: Elect = (%+v, %v), want new-epoch", shift, winner, ok)
		}
	}
	if _, ok := Elect(nil); ok {
		t.Fatal("Elect(nil) reported a winner")
	}
}

// TestSupervisorPromotesLoneFollowerOnStall: constant progress, no peers —
// after a full heartbeat timeout the lone candidate elects and promotes
// itself, then the supervisor retires.
func TestSupervisorPromotesLoneFollowerOnStall(t *testing.T) {
	promoted := make(chan struct{})
	s := NewSupervisor(SupervisorConfig{
		HeartbeatTimeout: 50 * time.Millisecond,
		PollEvery:        5 * time.Millisecond,
		Progress:         func() uint64 { return 7 },
		Self:             func() Candidate { return Candidate{ID: "self", Epoch: 1} },
		Promote:          func() error { close(promoted); return nil },
		Logger:           quietLogger(),
	})
	s.Start()
	defer s.Stop()
	select {
	case <-promoted:
	case <-time.After(10 * time.Second):
		t.Fatal("supervisor never promoted a stalled lone follower")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Promotions != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stats never recorded the promotion: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.Detections == 0 || st.LastWinner != "self" {
		t.Fatalf("stats after promotion: %+v", st)
	}
}

// TestSupervisorStandsByWhenPeerWins: a better-positioned peer on the
// slate means this node logs the winner, never promotes, and keeps
// re-arming (a later round would fall to it if the peer also died).
func TestSupervisorStandsByWhenPeerWins(t *testing.T) {
	var promoteCalls atomic.Uint64
	s := NewSupervisor(SupervisorConfig{
		HeartbeatTimeout: 30 * time.Millisecond,
		PollEvery:        5 * time.Millisecond,
		Progress:         func() uint64 { return 0 },
		Self:             func() Candidate { return Candidate{ID: "self", Epoch: 1, Records: 5} },
		Peers: func() []Candidate {
			return []Candidate{{ID: "peer", Epoch: 1, Records: 99}}
		},
		Promote: func() error { promoteCalls.Add(1); return nil },
		Logger:  quietLogger(),
	})
	s.Start()
	defer s.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Detections < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("detector never re-armed after standing by: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if got := promoteCalls.Load(); got != 0 {
		t.Fatalf("stand-by node promoted itself %d time(s)", got)
	}
	if st := s.Stats(); st.LastWinner != "peer" || st.Promotions != 0 {
		t.Fatalf("stand-by stats: %+v", st)
	}
}

// TestSupervisorProgressSuppressesElection: progress that advances between
// polls (a live primary) must never trip the detector, no matter how many
// timeouts elapse.
func TestSupervisorProgressSuppressesElection(t *testing.T) {
	var ticks atomic.Uint64
	s := NewSupervisor(SupervisorConfig{
		HeartbeatTimeout: 30 * time.Millisecond,
		PollEvery:        5 * time.Millisecond,
		Progress:         func() uint64 { return ticks.Add(1) },
		Self:             func() Candidate { return Candidate{ID: "self"} },
		Promote:          func() error { t.Error("promoted despite live progress"); return nil },
		Logger:           quietLogger(),
	})
	s.Start()
	time.Sleep(200 * time.Millisecond) // > 6 full timeouts
	s.Stop()
	if st := s.Stats(); st.Detections != 0 {
		t.Fatalf("live progress still produced %d detection(s)", st.Detections)
	}
}

// TestSupervisorPromoteErrorRearms: a failed promotion re-arms the
// detector; the next stall retries and succeeds.
func TestSupervisorPromoteErrorRearms(t *testing.T) {
	var calls atomic.Uint64
	s := NewSupervisor(SupervisorConfig{
		HeartbeatTimeout: 30 * time.Millisecond,
		PollEvery:        5 * time.Millisecond,
		Progress:         func() uint64 { return 0 },
		Self:             func() Candidate { return Candidate{ID: "self"} },
		Promote: func() error {
			if calls.Add(1) == 1 {
				return errors.New("transient promote failure")
			}
			return nil
		},
		Logger: quietLogger(),
	})
	s.Start()
	defer s.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Promotions != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("promotion never succeeded after the transient failure: %+v (calls=%d)", s.Stats(), calls.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("Promote called %d time(s), want 2 (one failure, one success)", got)
	}
	if st := s.Stats(); st.Detections != 2 {
		t.Fatalf("detections = %d, want 2", st.Detections)
	}
}

// TestSupervisorStopRestart: Stop is idempotent and a stopped supervisor
// can be re-armed.
func TestSupervisorStopRestart(t *testing.T) {
	s := NewSupervisor(SupervisorConfig{
		HeartbeatTimeout: time.Hour,
		PollEvery:        time.Millisecond,
		Progress:         func() uint64 { return 0 },
		Self:             func() Candidate { return Candidate{ID: "self"} },
		Promote:          func() error { return nil },
		Logger:           quietLogger(),
	})
	s.Start()
	s.Start() // idempotent while running
	s.Stop()
	s.Stop() // idempotent when stopped
	s.Start()
	s.Stop()
}

package repl

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"precis/internal/faultinject"
	"precis/internal/obs"
	"precis/internal/wal"
)

// PrimaryConfig tunes the streaming side.
type PrimaryConfig struct {
	// HeartbeatEvery paces frontier heartbeats on idle links (0: 500ms).
	HeartbeatEvery time.Duration
	// WriteTimeout bounds each message write; a follower that stops
	// draining is disconnected rather than wedging the streamer (0: 10s).
	WriteTimeout time.Duration
	// HandshakeTimeout bounds the wait for the follower's Hello (0: 10s).
	HandshakeTimeout time.Duration
	// Logger receives per-link notes; nil uses log.Default().
	Logger *log.Logger
}

// Metrics are the optional instruments a Primary ticks (obs instruments
// are nil-receiver no-ops).
type Metrics struct {
	SentRecords   *obs.Counter
	SentBytes     *obs.Counter
	SnapshotsSent *obs.Counter
	Handshakes    *obs.Counter
	LinkErrors    *obs.Counter
}

// PrimaryStats snapshots the streaming side's counters.
type PrimaryStats struct {
	Followers     int    `json:"followers"`
	Handshakes    uint64 `json:"handshakes"`
	SentRecords   uint64 `json:"sent_records"`
	SentBytes     uint64 `json:"sent_bytes"`
	SnapshotsSent uint64 `json:"snapshots_sent"`
	LinkErrors    uint64 `json:"link_errors"`
}

// Primary streams a Store's committed WAL frames to followers. Each
// accepted link gets its own goroutine that tails the durable frontier:
// snapshot bootstrap for a fresh (or fallen-behind) follower, then
// records, crossing generation rotations in-stream. The primary never
// blocks mutations: it reads the log files the store already wrote.
type Primary struct {
	store *wal.Store
	cfg   PrimaryConfig
	log   *log.Logger

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup

	metrics atomic.Pointer[Metrics]

	handshakes  atomic.Uint64
	sentRecords atomic.Uint64
	sentBytes   atomic.Uint64
	snapshots   atomic.Uint64
	linkErrors  atomic.Uint64
}

// NewPrimary wraps store for streaming; call Serve to start accepting.
func NewPrimary(store *wal.Store, cfg PrimaryConfig) *Primary {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	lg := cfg.Logger
	if lg == nil {
		lg = log.Default()
	}
	return &Primary{
		store: store,
		cfg:   cfg,
		log:   lg,
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
}

// SetMetrics wires instruments in (nil allowed).
func (p *Primary) SetMetrics(m *Metrics) { p.metrics.Store(m) }

// Serve accepts follower links on ln until Close. It blocks; run it in a
// goroutine. Close makes it return nil.
func (p *Primary) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = ln.Close()
		return fmt.Errorf("repl: primary is closed")
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go p.serveConn(conn)
	}
}

// Addr returns the accept address (nil before Serve).
func (p *Primary) Addr() net.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return nil
	}
	return p.ln.Addr()
}

// Close stops accepting, severs every follower link, and waits for the
// per-link goroutines.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	ln := p.ln
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	p.wg.Wait()
	return err
}

// Stats snapshots the counters.
func (p *Primary) Stats() PrimaryStats {
	p.mu.Lock()
	followers := len(p.conns)
	p.mu.Unlock()
	return PrimaryStats{
		Followers:     followers,
		Handshakes:    p.handshakes.Load(),
		SentRecords:   p.sentRecords.Load(),
		SentBytes:     p.sentBytes.Load(),
		SnapshotsSent: p.snapshots.Load(),
		LinkErrors:    p.linkErrors.Load(),
	}
}

// position is a follower's streaming cursor.
type position struct {
	gen uint64
	seq uint64 // next record index to send within gen
}

// errSnapshotNeeded makes the stream loop fall back to a snapshot
// bootstrap (the follower's position cannot be served from log files).
var errSnapshotNeeded = errors.New("repl: snapshot needed")

// serveConn runs one follower link to completion.
func (p *Primary) serveConn(conn net.Conn) {
	defer p.wg.Done()
	defer func() {
		_ = conn.Close()
		p.mu.Lock()
		delete(p.conns, conn)
		p.mu.Unlock()
	}()
	if err := p.streamTo(conn); err != nil {
		p.linkErrors.Add(1)
		if m := p.metrics.Load(); m != nil {
			m.LinkErrors.Inc()
		}
		p.log.Printf("repl: follower %s: %v", conn.RemoteAddr(), err)
	}
}

// streamTo handshakes and then streams until the link drops or the
// primary closes.
func (p *Primary) streamTo(conn net.Conn) error {
	_ = conn.SetReadDeadline(time.Now().Add(p.cfg.HandshakeTimeout))
	typ, body, err := readMsg(conn)
	if err != nil {
		return fmt.Errorf("handshake read: %w", err)
	}
	if typ != MsgHello {
		return p.reject(conn, fmt.Sprintf("expected hello, got %s", typ))
	}
	hello, err := decodeHello(body)
	if err != nil {
		return p.reject(conn, err.Error())
	}
	if hello.Version != ProtoVersion {
		return p.reject(conn, fmt.Sprintf("protocol version %d not supported (want %d)", hello.Version, ProtoVersion))
	}
	if err := faultinject.Fire(faultinject.SiteReplHandshake); err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	p.handshakes.Add(1)
	if m := p.metrics.Load(); m != nil {
		m.Handshakes.Inc()
	}

	// The follower sends nothing after Hello; a reader goroutine exists
	// only to notice the peer closing and unblock our writes promptly.
	go func() {
		var buf [1]byte
		_, _ = conn.Read(buf[:])
		_ = conn.Close()
	}()

	sub, cancel := p.store.Subscribe()
	defer cancel()

	// Resume is only possible within the current generation: checkpoints
	// garbage-collect older logs immediately. Gen 0 means "never
	// bootstrapped".
	fr := p.store.Frontier()
	pos := position{gen: hello.Gen, seq: hello.Records}
	canResume := hello.Gen != 0 && hello.Gen == fr.Gen && int64(hello.Records) <= fr.Records
	if canResume {
		if err := p.send(conn, MsgWelcome, encodeWelcome(Welcome{Version: ProtoVersion, Gen: pos.gen, Records: pos.seq})); err != nil {
			return err
		}
	} else {
		gen, raw, err := p.loadSnapshot()
		if err != nil {
			return err
		}
		if err := p.send(conn, MsgWelcome, encodeWelcome(Welcome{Version: ProtoVersion, Snapshot: true, Gen: gen})); err != nil {
			return err
		}
		if err := p.sendSnapshot(conn, gen, raw); err != nil {
			return err
		}
		pos = position{gen: gen}
	}

	hb := time.NewTicker(p.cfg.HeartbeatEvery)
	defer hb.Stop()
	var f *os.File
	defer func() {
		if f != nil {
			_ = f.Close()
		}
	}()
	var frames *wal.FrameReader
	for {
		var err error
		fr := p.store.Frontier()
		// How far does pos.gen go? Up to the live frontier while it is the
		// current generation; to its recorded end once rotated away.
		limit := int64(-1)
		rotated := false
		if fr.Gen == pos.gen {
			limit = fr.Records
		} else if fr.Gen > pos.gen {
			if end, ok := p.store.GenEnd(pos.gen); ok {
				limit, rotated = end, true
			}
		}
		if limit < 0 || int64(pos.seq) > limit {
			// The follower's generation is gone (or ahead of us — a stale
			// primary restart); re-bootstrap from the current snapshot.
			err = errSnapshotNeeded
		} else if int64(pos.seq) < limit {
			if f == nil {
				path := p.store.WALPath(pos.gen)
				f, err = os.Open(path)
				if err != nil {
					f = nil
					err = errSnapshotNeeded
				} else {
					frames = wal.NewFrameReader(f, path)
					err = skipFrames(frames, pos.seq)
				}
			}
			if err == nil {
				err = p.sendRecords(conn, frames, &pos, limit, fr)
			}
		}
		if err == nil && rotated && int64(pos.seq) == limit {
			// End of a rotated generation: cross into the next one. Its
			// snapshot equals "previous snapshot + every record just sent",
			// so a caught-up follower needs no re-bootstrap.
			pos.gen++
			pos.seq = 0
			if f != nil {
				_ = f.Close()
				f, frames = nil, nil
			}
			continue
		}
		if errors.Is(err, errSnapshotNeeded) {
			if f != nil {
				_ = f.Close()
				f, frames = nil, nil
			}
			gen, raw, lerr := p.loadSnapshot()
			if lerr != nil {
				return lerr
			}
			if err := p.sendSnapshot(conn, gen, raw); err != nil {
				return err
			}
			pos = position{gen: gen}
			continue
		}
		if err != nil {
			return err
		}
		// Caught up: wait for the frontier to move, heartbeating so the
		// follower's lag view stays fresh on an idle link.
		select {
		case <-sub:
		case <-hb.C:
			fr := p.store.Frontier()
			if err := p.send(conn, MsgHeartbeat, encodeHeartbeat(Heartbeat{
				FrontierGen:     fr.Gen,
				FrontierRecords: uint64(fr.Records),
				FrontierBytes:   uint64(fr.Bytes),
			})); err != nil {
				return err
			}
		case <-p.done:
			return nil
		}
	}
}

// sendRecords streams frames [pos.seq, limit) of pos.gen.
func (p *Primary) sendRecords(conn net.Conn, frames *wal.FrameReader, pos *position, limit int64, fr wal.Frontier) error {
	for int64(pos.seq) < limit {
		payload, err := frames.Next()
		if err != nil {
			if err == io.EOF {
				// The file ends before the durable frontier: a poisoned
				// writer truncated its tail. Drop the link; the follower
				// reconnects and (after the healing checkpoint) re-bootstraps.
				return fmt.Errorf("wal %s ends at record %d, frontier claims %d", p.store.WALPath(pos.gen), pos.seq, limit)
			}
			return err
		}
		msg := RecordMsg{
			Gen:             pos.gen,
			Seq:             pos.seq,
			FrontierGen:     fr.Gen,
			FrontierRecords: uint64(fr.Records),
			FrontierBytes:   uint64(fr.Bytes),
			Payload:         payload,
		}
		if err := p.send(conn, MsgRecord, encodeRecord(msg)); err != nil {
			return err
		}
		pos.seq++
		p.sentRecords.Add(1)
		if m := p.metrics.Load(); m != nil {
			m.SentRecords.Inc()
		}
	}
	return nil
}

// loadSnapshot reads the current snapshot file, retrying across the tiny
// window where a checkpoint rotation has advanced the generation but GC
// already removed the file we were told about.
func (p *Primary) loadSnapshot() (uint64, []byte, error) {
	for attempt := 0; ; attempt++ {
		gen, path := p.store.SnapshotPath()
		raw, err := os.ReadFile(path)
		if err == nil {
			return gen, raw, nil
		}
		if !os.IsNotExist(err) || attempt >= 5 {
			return 0, nil, fmt.Errorf("load snapshot: %w", err)
		}
	}
}

// sendSnapshot chunks the snapshot over the link.
func (p *Primary) sendSnapshot(conn net.Conn, gen uint64, raw []byte) error {
	if err := p.send(conn, MsgSnapBegin, encodeSnapBegin(SnapBegin{Gen: gen, Size: uint64(len(raw))})); err != nil {
		return err
	}
	for off := 0; off < len(raw); off += snapChunkSize {
		end := min(off+snapChunkSize, len(raw))
		if err := p.send(conn, MsgSnapChunk, raw[off:end]); err != nil {
			return err
		}
	}
	if err := p.send(conn, MsgSnapEnd, nil); err != nil {
		return err
	}
	p.snapshots.Add(1)
	if m := p.metrics.Load(); m != nil {
		m.SnapshotsSent.Inc()
	}
	return nil
}

// send writes one framed message, firing the repl.send fault site. An
// injected ErrInjectCorrupt flips a payload byte instead of failing — the
// frame goes out genuinely corrupted for the follower's checksums to
// catch.
func (p *Primary) send(conn net.Conn, typ MsgType, body []byte) error {
	corrupt := false
	if err := faultinject.Fire(faultinject.SiteReplSend); err != nil {
		if errors.Is(err, ErrInjectCorrupt) {
			corrupt = true
		} else {
			return fmt.Errorf("send %s: %w", typ, err)
		}
	}
	payload := make([]byte, 0, 1+len(body))
	payload = append(payload, byte(typ))
	payload = append(payload, body...)
	if len(payload) > maxMsgPayload {
		return &ProtocolError{Msg: typ, Detail: fmt.Sprintf("payload %d exceeds limit %d", len(payload), maxMsgPayload)}
	}
	frame := frameMsg(payload)
	if corrupt {
		frame[len(frame)-1] ^= 0x40
	}
	_ = conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
	n, err := conn.Write(frame)
	p.sentBytes.Add(uint64(n))
	if m := p.metrics.Load(); m != nil {
		m.SentBytes.Add(uint64(n))
	}
	if err != nil {
		return fmt.Errorf("send %s: %w", typ, err)
	}
	return nil
}

// reject best-effort reports a handshake failure to the peer and returns
// it as the link error.
func (p *Primary) reject(conn net.Conn, detail string) error {
	_ = conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
	_ = writeMsg(conn, MsgError, []byte(detail))
	return fmt.Errorf("handshake: %s", detail)
}

// skipFrames advances past the n frames the follower already has.
func skipFrames(frames *wal.FrameReader, n uint64) error {
	for i := uint64(0); i < n; i++ {
		if _, err := frames.Next(); err != nil {
			if err == io.EOF {
				return errSnapshotNeeded
			}
			return err
		}
	}
	return nil
}

package repl

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"precis/internal/faultinject"
	"precis/internal/obs"
	"precis/internal/wal"
)

// PrimaryConfig tunes the streaming side.
type PrimaryConfig struct {
	// HeartbeatEvery paces frontier heartbeats on idle links (0: 500ms).
	HeartbeatEvery time.Duration
	// WriteTimeout bounds each message write; a follower that stops
	// draining is disconnected rather than wedging the streamer (0: 10s).
	WriteTimeout time.Duration
	// HandshakeTimeout bounds the wait for the follower's Hello (0: 10s).
	HandshakeTimeout time.Duration
	// SyncReplicas is the number of durably-acking (protocol v2+)
	// followers whose acks each group commit must collect before
	// WaitCommitted releases it. 0 keeps replication fully asynchronous.
	SyncReplicas int
	// AckTimeout bounds each quorum wait (0: 2s). On expiry the commit
	// either fails with ErrQuorumLost or, with DegradeToAsync, succeeds
	// locally while the primary enters sticky degraded mode.
	AckTimeout time.Duration
	// DegradeToAsync trades consistency for availability: instead of
	// failing writes when the quorum is lost, commit locally and raise a
	// sticky degraded flag that clears once a quorum of acks reaches the
	// durable frontier again.
	DegradeToAsync bool
	// Epoch is the primary's fencing epoch, stamped on every v3 stream
	// (Welcome, Record, Heartbeat). A v3 follower arriving with a higher
	// epoch deposes this primary: the link is rejected, OnDeposed fires,
	// and the commit gate refuses every subsequent commit.
	Epoch uint64
	// OnDeposed fires (once) when a follower proves a newer primary exists
	// at the given epoch. The engine layer uses it to fence the WAL store
	// so no write can become durable after deposition.
	OnDeposed func(epoch uint64)
	// Logger receives per-link notes; nil uses log.Default().
	Logger *log.Logger
}

// ErrQuorumLost is returned (wrapped) by the commit gate when SyncReplicas
// followers fail to ack a group commit within AckTimeout and DegradeToAsync
// is off. The record IS durable on the primary's local WAL — the caller
// must not roll back applied state, only surface the reduced durability.
var ErrQuorumLost = errors.New("quorum lost")

// Metrics are the optional instruments a Primary ticks (obs instruments
// are nil-receiver no-ops).
type Metrics struct {
	SentRecords    *obs.Counter
	SentBytes      *obs.Counter
	SnapshotsSent  *obs.Counter
	Handshakes     *obs.Counter
	LinkErrors     *obs.Counter
	QuorumTimeouts *obs.Counter
}

// FollowerLinkStats describes one connected follower from the primary's
// side: how far its durable acks have reached and how stale they are.
type FollowerLinkStats struct {
	Remote     string `json:"remote"`
	Version    uint64 `json:"version"`
	AckGen     uint64 `json:"ack_gen"`
	AckRecords uint64 `json:"ack_records"`
	AckBytes   uint64 `json:"ack_bytes"`
	// AckLagRecords/AckLagBytes measure the gap between the primary's
	// durable frontier and the follower's last ack (frontier totals when
	// the ack is from an older generation — a lower bound).
	AckLagRecords int64 `json:"ack_lag_records"`
	AckLagBytes   int64 `json:"ack_lag_bytes"`
	// SecsSinceAck is -1 until the first ack arrives.
	SecsSinceAck float64 `json:"secs_since_ack"`
	// SyncEligible marks protocol v2+ links that can count toward the
	// quorum; v1 followers stream async-only.
	SyncEligible bool `json:"sync_eligible"`
}

// PrimaryStats snapshots the streaming side's counters.
type PrimaryStats struct {
	Followers       int                 `json:"followers"`
	Handshakes      uint64              `json:"handshakes"`
	SentRecords     uint64              `json:"sent_records"`
	SentBytes       uint64              `json:"sent_bytes"`
	SnapshotsSent   uint64              `json:"snapshots_sent"`
	LinkErrors      uint64              `json:"link_errors"`
	SyncReplicas    int                 `json:"sync_replicas"`
	Degraded        bool                `json:"degraded"`
	QuorumWaits     uint64              `json:"quorum_waits"`
	QuorumTimeouts  uint64              `json:"quorum_timeouts"`
	Epoch           uint64              `json:"epoch"`
	DeposedBy       uint64              `json:"deposed_by,omitempty"`
	EpochRejections uint64              `json:"epoch_rejections,omitempty"`
	Links           []FollowerLinkStats `json:"links,omitempty"`
}

// Primary streams a Store's committed WAL frames to followers. Each
// accepted link gets its own goroutine that tails the durable frontier:
// snapshot bootstrap for a fresh (or fallen-behind) follower, then
// records, crossing generation rotations in-stream. The primary never
// blocks mutations: it reads the log files the store already wrote.
type Primary struct {
	store *wal.Store
	cfg   PrimaryConfig
	log   *log.Logger

	mu        sync.Mutex
	ln        net.Listener
	conns     map[net.Conn]struct{}
	links     map[net.Conn]*linkState
	ackCh     chan struct{} // closed+replaced on every ack (broadcast)
	degraded  bool          // sticky until a quorum of acks reaches the frontier
	deposedBy uint64        // sticky: epoch of the newer primary that deposed us
	closed    bool
	done      chan struct{}
	wg        sync.WaitGroup

	onDeposed sync.Once

	metrics atomic.Pointer[Metrics]

	handshakes      atomic.Uint64
	sentRecords     atomic.Uint64
	sentBytes       atomic.Uint64
	snapshots       atomic.Uint64
	linkErrors      atomic.Uint64
	quorumWaits     atomic.Uint64
	quorumTimeouts  atomic.Uint64
	epochRejections atomic.Uint64
}

// linkState is the primary-side view of one handshaken follower link,
// guarded by Primary.mu.
type linkState struct {
	remote     string
	version    uint64
	ackGen     uint64
	ackRecords uint64
	ackBytes   uint64
	lastAck    time.Time
	hasAck     bool
}

// syncEligible reports whether the link's acks may count toward a quorum.
func (l *linkState) syncEligible() bool { return l.version >= 2 }

// ackedAtLeast reports whether the link has durably acked (gen, records).
func (l *linkState) ackedAtLeast(gen uint64, records int64) bool {
	if !l.hasAck {
		return false
	}
	return l.ackGen > gen || (l.ackGen == gen && l.ackRecords >= uint64(records))
}

// NewPrimary wraps store for streaming; call Serve to start accepting.
func NewPrimary(store *wal.Store, cfg PrimaryConfig) *Primary {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 2 * time.Second
	}
	lg := cfg.Logger
	if lg == nil {
		lg = log.Default()
	}
	return &Primary{
		store: store,
		cfg:   cfg,
		log:   lg,
		conns: make(map[net.Conn]struct{}),
		links: make(map[net.Conn]*linkState),
		ackCh: make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// SetMetrics wires instruments in (nil allowed).
func (p *Primary) SetMetrics(m *Metrics) { p.metrics.Store(m) }

// Serve accepts follower links on ln until Close. It blocks; run it in a
// goroutine. Close makes it return nil.
func (p *Primary) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = ln.Close()
		return fmt.Errorf("repl: primary is closed")
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go p.serveConn(conn)
	}
}

// Addr returns the accept address (nil before Serve).
func (p *Primary) Addr() net.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return nil
	}
	return p.ln.Addr()
}

// Close stops accepting, severs every follower link, and waits for the
// per-link goroutines.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	ln := p.ln
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	p.wg.Wait()
	return err
}

// Stats snapshots the counters and per-link ack positions.
func (p *Primary) Stats() PrimaryStats {
	fr := p.store.Frontier()
	now := time.Now()
	p.mu.Lock()
	followers := len(p.conns)
	degraded := p.degraded
	deposedBy := p.deposedBy
	var links []FollowerLinkStats
	for _, l := range p.links {
		ls := FollowerLinkStats{
			Remote:       l.remote,
			Version:      l.version,
			AckGen:       l.ackGen,
			AckRecords:   l.ackRecords,
			AckBytes:     l.ackBytes,
			SecsSinceAck: -1,
			SyncEligible: l.syncEligible(),
		}
		if l.hasAck {
			ls.SecsSinceAck = now.Sub(l.lastAck).Seconds()
		}
		if l.hasAck && l.ackGen == fr.Gen {
			ls.AckLagRecords = fr.Records - int64(l.ackRecords)
			ls.AckLagBytes = fr.Bytes - int64(l.ackBytes)
		} else {
			// No ack yet, or the ack predates the current generation:
			// report the whole current generation as the (lower-bound) lag.
			ls.AckLagRecords = fr.Records
			ls.AckLagBytes = fr.Bytes
		}
		links = append(links, ls)
	}
	p.mu.Unlock()
	return PrimaryStats{
		Followers:       followers,
		Handshakes:      p.handshakes.Load(),
		SentRecords:     p.sentRecords.Load(),
		SentBytes:       p.sentBytes.Load(),
		SnapshotsSent:   p.snapshots.Load(),
		LinkErrors:      p.linkErrors.Load(),
		SyncReplicas:    p.cfg.SyncReplicas,
		Degraded:        degraded,
		QuorumWaits:     p.quorumWaits.Load(),
		QuorumTimeouts:  p.quorumTimeouts.Load(),
		Epoch:           p.cfg.Epoch,
		DeposedBy:       deposedBy,
		EpochRejections: p.epochRejections.Load(),
		Links:           links,
	}
}

// DeposedBy returns the epoch of the newer primary that deposed this one,
// or 0 while this primary is still legitimate.
func (p *Primary) DeposedBy() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.deposedBy
}

// depose marks the primary permanently deposed by a newer epoch and fires
// OnDeposed exactly once (outside the lock — the engine's hook fences the
// WAL store, which takes its own locks).
func (p *Primary) depose(by uint64) {
	p.mu.Lock()
	if p.deposedBy == 0 || by > p.deposedBy {
		p.deposedBy = by
	}
	// Wake quorum waiters: they must fail with the fence, not idle out.
	close(p.ackCh)
	p.ackCh = make(chan struct{})
	p.mu.Unlock()
	p.onDeposed.Do(func() {
		p.log.Printf("repl: primary at epoch %d deposed by epoch %d; fencing", p.cfg.Epoch, by)
		if p.cfg.OnDeposed != nil {
			p.cfg.OnDeposed(by)
		}
	})
}

// Degraded reports the sticky degraded-mode flag.
func (p *Primary) Degraded() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.degraded
}

// quorumMetLocked counts sync-eligible followers whose acks have reached
// (gen, records). Callers hold p.mu.
func (p *Primary) quorumMetLocked(gen uint64, records int64) bool {
	n := 0
	for _, l := range p.links {
		if l.syncEligible() && l.ackedAtLeast(gen, records) {
			n++
			if n >= p.cfg.SyncReplicas {
				return true
			}
		}
	}
	return p.cfg.SyncReplicas <= 0
}

// WaitCommitted is the store's commit gate: it blocks a locally-durable
// group commit until SyncReplicas followers have acked at-or-past it, the
// AckTimeout expires, or the primary closes. The record is already on the
// primary's own WAL when this runs, so every exit path leaves local state
// consistent; the error only reports reduced durability.
func (p *Primary) WaitCommitted(gen uint64, records int64) error {
	if p.cfg.SyncReplicas <= 0 {
		return nil
	}
	timer := time.NewTimer(p.cfg.AckTimeout)
	defer timer.Stop()
	p.quorumWaits.Add(1)
	p.mu.Lock()
	for {
		if p.deposedBy != 0 {
			// The commit gate is part of the fence: a deposed primary must
			// not release a commit even if a quorum of stale acks exists.
			by := p.deposedBy
			p.mu.Unlock()
			return fmt.Errorf("repl: %w (primary deposed by epoch %d)", wal.ErrFenced, by)
		}
		if p.closed {
			p.mu.Unlock()
			return nil
		}
		if p.degraded && p.cfg.DegradeToAsync {
			p.mu.Unlock()
			return nil
		}
		if p.quorumMetLocked(gen, records) {
			p.mu.Unlock()
			return nil
		}
		ch := p.ackCh
		p.mu.Unlock()
		select {
		case <-ch:
		case <-timer.C:
			return p.quorumTimeout(gen, records)
		case <-p.done:
			// Shutdown: the gate is torn down before the primary closes in
			// the engine; a straggler here must not fail the local commit.
			return nil
		}
		p.mu.Lock()
	}
}

// quorumTimeout handles an expired quorum wait: fail the write with
// ErrQuorumLost, or — with DegradeToAsync — commit locally and raise the
// sticky degraded flag.
func (p *Primary) quorumTimeout(gen uint64, records int64) error {
	p.quorumTimeouts.Add(1)
	if m := p.metrics.Load(); m != nil {
		m.QuorumTimeouts.Inc()
	}
	if p.cfg.DegradeToAsync {
		p.mu.Lock()
		if !p.degraded {
			p.degraded = true
			p.log.Printf("repl: quorum of %d sync replica(s) not reached within %s; degrading to async replication (sticky until quorum heals)",
				p.cfg.SyncReplicas, p.cfg.AckTimeout)
		}
		p.mu.Unlock()
		return nil
	}
	return fmt.Errorf("repl: %w: %d sync replica(s) did not ack gen %d record %d within %s",
		ErrQuorumLost, p.cfg.SyncReplicas, gen, records, p.cfg.AckTimeout)
}

// recordAck folds a follower's ack into its link state, wakes quorum
// waiters, and heals degraded mode once a quorum of acks reaches the
// durable frontier.
func (p *Primary) recordAck(l *linkState, a Ack) {
	p.mu.Lock()
	// Acks are monotonic per link; ignore reordered/stale ones.
	if !l.hasAck || a.Gen > l.ackGen || (a.Gen == l.ackGen && a.Records >= l.ackRecords) {
		l.ackGen, l.ackRecords, l.ackBytes = a.Gen, a.Records, a.Bytes
		l.lastAck = time.Now()
		l.hasAck = true
	}
	close(p.ackCh)
	p.ackCh = make(chan struct{})
	healed := false
	if p.degraded {
		fr := p.store.Frontier()
		if p.quorumMetLocked(fr.Gen, fr.Records) {
			p.degraded = false
			healed = true
		}
	}
	p.mu.Unlock()
	if healed {
		p.log.Printf("repl: sync replica quorum healed; leaving degraded mode")
	}
}

// position is a follower's streaming cursor.
type position struct {
	gen uint64
	seq uint64 // next record index to send within gen
}

// errSnapshotNeeded makes the stream loop fall back to a snapshot
// bootstrap (the follower's position cannot be served from log files).
var errSnapshotNeeded = errors.New("repl: snapshot needed")

// serveConn runs one follower link to completion.
func (p *Primary) serveConn(conn net.Conn) {
	defer p.wg.Done()
	defer func() {
		_ = conn.Close()
		p.mu.Lock()
		delete(p.conns, conn)
		delete(p.links, conn)
		// A departing sync follower can change quorum math; wake waiters so
		// they re-check instead of idling on a channel nobody will close.
		close(p.ackCh)
		p.ackCh = make(chan struct{})
		p.mu.Unlock()
	}()
	if err := p.streamTo(conn); err != nil {
		p.linkErrors.Add(1)
		if m := p.metrics.Load(); m != nil {
			m.LinkErrors.Inc()
		}
		p.log.Printf("repl: follower %s: %v", conn.RemoteAddr(), err)
	}
}

// streamTo handshakes and then streams until the link drops or the
// primary closes.
func (p *Primary) streamTo(conn net.Conn) error {
	_ = conn.SetReadDeadline(time.Now().Add(p.cfg.HandshakeTimeout))
	typ, body, err := readMsg(conn)
	if err != nil {
		return fmt.Errorf("handshake read: %w", err)
	}
	if typ != MsgHello {
		return p.reject(conn, fmt.Sprintf("expected hello, got %s", typ))
	}
	hello, err := decodeHello(body)
	if err != nil {
		return p.reject(conn, err.Error())
	}
	if hello.Version < MinProtoVersion || hello.Version > ProtoVersion {
		return p.reject(conn, fmt.Sprintf("protocol version %d not supported (want %d..%d)", hello.Version, MinProtoVersion, ProtoVersion))
	}
	// Negotiated version: the follower never claims more than it speaks,
	// so its Hello version (capped above at ours) is the stream version.
	version := hello.Version
	if err := faultinject.Fire(faultinject.SiteReplHandshake); err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	// Epoch fencing (v3 links only; older peers carry no epoch and never
	// participate). A follower ahead of us proves a newer primary was
	// elected: we are deposed — permanently. A follower behind us may carry
	// a diverged, unacked WAL suffix from its previous life as the old
	// primary, so it is forced through a snapshot bootstrap, which
	// truncates that suffix.
	forceBootstrap := false
	if version >= 3 {
		if err := faultinject.Fire(faultinject.SiteReplEpochCheck); err != nil {
			return fmt.Errorf("epoch check: %w", err)
		}
		if hello.Epoch > p.cfg.Epoch {
			p.epochRejections.Add(1)
			p.depose(hello.Epoch)
			return p.reject(conn, fmt.Sprintf("primary epoch %d is stale: follower is at epoch %d", p.cfg.Epoch, hello.Epoch))
		}
		forceBootstrap = hello.Epoch < p.cfg.Epoch
	}
	if by := func() uint64 { p.mu.Lock(); defer p.mu.Unlock(); return p.deposedBy }(); by != 0 {
		// Once deposed, this primary serves no one — not even same-epoch
		// followers, whose acks could otherwise release fenced commits.
		p.epochRejections.Add(1)
		return p.reject(conn, fmt.Sprintf("primary deposed by epoch %d", by))
	}
	_ = conn.SetReadDeadline(time.Time{})
	p.handshakes.Add(1)
	if m := p.metrics.Load(); m != nil {
		m.Handshakes.Inc()
	}

	link := &linkState{remote: conn.RemoteAddr().String(), version: version}
	p.mu.Lock()
	p.links[conn] = link
	p.mu.Unlock()

	// v2+ followers send Ack frames after applying+fsyncing records; v1
	// followers send nothing, so the reader just notices the peer closing
	// and unblocks our writes promptly. Either way a read error (or any
	// non-ack frame) severs the link.
	go p.readAcks(conn, link)

	sub, cancel := p.store.Subscribe()
	defer cancel()

	// Resume is only possible within the current generation: checkpoints
	// garbage-collect older logs immediately. Gen 0 means "never
	// bootstrapped".
	fr := p.store.Frontier()
	hbMS := uint64(p.cfg.HeartbeatEvery.Milliseconds())
	pos := position{gen: hello.Gen, seq: hello.Records}
	canResume := !forceBootstrap && hello.Gen != 0 && hello.Gen == fr.Gen && int64(hello.Records) <= fr.Records
	if canResume {
		if err := p.send(conn, MsgWelcome, encodeWelcome(Welcome{Version: version, Gen: pos.gen, Records: pos.seq, HeartbeatMS: hbMS, Epoch: p.cfg.Epoch})); err != nil {
			return err
		}
	} else {
		gen, raw, err := p.loadSnapshot()
		if err != nil {
			return err
		}
		if err := p.send(conn, MsgWelcome, encodeWelcome(Welcome{Version: version, Snapshot: true, Gen: gen, HeartbeatMS: hbMS, Epoch: p.cfg.Epoch})); err != nil {
			return err
		}
		if err := p.sendSnapshot(conn, gen, raw); err != nil {
			return err
		}
		pos = position{gen: gen}
	}

	hb := time.NewTicker(p.cfg.HeartbeatEvery)
	defer hb.Stop()
	var f *os.File
	defer func() {
		if f != nil {
			_ = f.Close()
		}
	}()
	var frames *wal.FrameReader
	for {
		var err error
		fr := p.store.Frontier()
		// How far does pos.gen go? Up to the live frontier while it is the
		// current generation; to its recorded end once rotated away.
		limit := int64(-1)
		rotated := false
		if fr.Gen == pos.gen {
			limit = fr.Records
		} else if fr.Gen > pos.gen {
			if end, ok := p.store.GenEnd(pos.gen); ok {
				limit, rotated = end, true
			}
		}
		if limit < 0 || int64(pos.seq) > limit {
			// The follower's generation is gone (or ahead of us — a stale
			// primary restart); re-bootstrap from the current snapshot.
			err = errSnapshotNeeded
		} else if int64(pos.seq) < limit {
			if f == nil {
				path := p.store.WALPath(pos.gen)
				f, err = os.Open(path)
				if err != nil {
					f = nil
					err = errSnapshotNeeded
				} else {
					frames = wal.NewFrameReader(f, path)
					err = skipFrames(frames, pos.seq)
				}
			}
			if err == nil {
				err = p.sendRecords(conn, frames, &pos, limit, fr, version)
			}
		}
		if err == nil && rotated && int64(pos.seq) == limit {
			// End of a rotated generation: cross into the next one. Its
			// snapshot equals "previous snapshot + every record just sent",
			// so a caught-up follower needs no re-bootstrap.
			pos.gen++
			pos.seq = 0
			if f != nil {
				_ = f.Close()
				f, frames = nil, nil
			}
			continue
		}
		if errors.Is(err, errSnapshotNeeded) {
			if f != nil {
				_ = f.Close()
				f, frames = nil, nil
			}
			gen, raw, lerr := p.loadSnapshot()
			if lerr != nil {
				return lerr
			}
			if err := p.sendSnapshot(conn, gen, raw); err != nil {
				return err
			}
			pos = position{gen: gen}
			continue
		}
		if err != nil {
			return err
		}
		// Caught up: wait for the frontier to move, heartbeating so the
		// follower's lag view stays fresh on an idle link.
		select {
		case <-sub:
		case <-hb.C:
			fr := p.store.Frontier()
			if err := p.send(conn, MsgHeartbeat, encodeHeartbeat(Heartbeat{
				FrontierGen:     fr.Gen,
				FrontierRecords: uint64(fr.Records),
				FrontierBytes:   uint64(fr.Bytes),
				Epoch:           p.cfg.Epoch,
			}, version)); err != nil {
				return err
			}
		case <-p.done:
			return nil
		}
	}
}

// readAcks drains the follower→primary half of the link, folding Ack
// frames into the quorum state. Any read error, decode error, or
// unexpected frame type severs the link (closing conn also unblocks the
// stream side's writes).
func (p *Primary) readAcks(conn net.Conn, link *linkState) {
	defer func() { _ = conn.Close() }()
	for {
		if err := faultinject.Fire(faultinject.SiteReplAckRecv); err != nil {
			return
		}
		typ, body, err := readMsg(conn)
		if err != nil {
			return
		}
		if typ != MsgAck {
			p.log.Printf("repl: follower %s sent unexpected %s frame; dropping link", link.remote, typ)
			return
		}
		ack, err := decodeAck(body)
		if err != nil {
			p.log.Printf("repl: follower %s: %v; dropping link", link.remote, err)
			return
		}
		p.recordAck(link, ack)
	}
}

// sendRecords streams frames [pos.seq, limit) of pos.gen in the link's
// negotiated protocol version.
func (p *Primary) sendRecords(conn net.Conn, frames *wal.FrameReader, pos *position, limit int64, fr wal.Frontier, version uint64) error {
	for int64(pos.seq) < limit {
		payload, err := frames.Next()
		if err != nil {
			if err == io.EOF {
				// The file ends before the durable frontier: a poisoned
				// writer truncated its tail. Drop the link; the follower
				// reconnects and (after the healing checkpoint) re-bootstraps.
				return fmt.Errorf("wal %s ends at record %d, frontier claims %d", p.store.WALPath(pos.gen), pos.seq, limit)
			}
			return err
		}
		msg := RecordMsg{
			Gen:             pos.gen,
			Seq:             pos.seq,
			FrontierGen:     fr.Gen,
			FrontierRecords: uint64(fr.Records),
			FrontierBytes:   uint64(fr.Bytes),
			Epoch:           p.cfg.Epoch,
			Payload:         payload,
		}
		if err := p.send(conn, MsgRecord, encodeRecord(msg, version)); err != nil {
			return err
		}
		pos.seq++
		p.sentRecords.Add(1)
		if m := p.metrics.Load(); m != nil {
			m.SentRecords.Inc()
		}
	}
	return nil
}

// loadSnapshot produces full snapshot bytes for the state at the start of
// the active generation. With delta checkpointing the on-disk state is a
// chain (full snapshot + deltas) that need not reach the active
// generation, so the store flattens it — a plain file read when the chain
// is a single current full snapshot, an in-memory reconstruction otherwise.
// The wire protocol is untouched: followers always receive one full
// snapshot.
func (p *Primary) loadSnapshot() (uint64, []byte, error) {
	gen, raw, err := p.store.FlattenedSnapshot()
	if err != nil {
		return 0, nil, fmt.Errorf("load snapshot: %w", err)
	}
	return gen, raw, nil
}

// sendSnapshot chunks the snapshot over the link.
func (p *Primary) sendSnapshot(conn net.Conn, gen uint64, raw []byte) error {
	if err := p.send(conn, MsgSnapBegin, encodeSnapBegin(SnapBegin{Gen: gen, Size: uint64(len(raw))})); err != nil {
		return err
	}
	for off := 0; off < len(raw); off += snapChunkSize {
		end := min(off+snapChunkSize, len(raw))
		if err := p.send(conn, MsgSnapChunk, raw[off:end]); err != nil {
			return err
		}
	}
	if err := p.send(conn, MsgSnapEnd, nil); err != nil {
		return err
	}
	p.snapshots.Add(1)
	if m := p.metrics.Load(); m != nil {
		m.SnapshotsSent.Inc()
	}
	return nil
}

// send writes one framed message, firing the repl.send fault site. An
// injected ErrInjectCorrupt flips a payload byte instead of failing — the
// frame goes out genuinely corrupted for the follower's checksums to
// catch.
func (p *Primary) send(conn net.Conn, typ MsgType, body []byte) error {
	corrupt := false
	if err := faultinject.Fire(faultinject.SiteReplSend); err != nil {
		if errors.Is(err, ErrInjectCorrupt) {
			corrupt = true
		} else {
			return fmt.Errorf("send %s: %w", typ, err)
		}
	}
	payload := make([]byte, 0, 1+len(body))
	payload = append(payload, byte(typ))
	payload = append(payload, body...)
	if len(payload) > maxMsgPayload {
		return &ProtocolError{Msg: typ, Detail: fmt.Sprintf("payload %d exceeds limit %d", len(payload), maxMsgPayload)}
	}
	frame := frameMsg(payload)
	if corrupt {
		frame[len(frame)-1] ^= 0x40
	}
	_ = conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
	n, err := conn.Write(frame)
	p.sentBytes.Add(uint64(n))
	if m := p.metrics.Load(); m != nil {
		m.SentBytes.Add(uint64(n))
	}
	if err != nil {
		return fmt.Errorf("send %s: %w", typ, err)
	}
	return nil
}

// reject best-effort reports a handshake failure to the peer and returns
// it as the link error.
func (p *Primary) reject(conn net.Conn, detail string) error {
	_ = conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
	_ = writeMsg(conn, MsgError, []byte(detail))
	return fmt.Errorf("handshake: %s", detail)
}

// skipFrames advances past the n frames the follower already has.
func skipFrames(frames *wal.FrameReader, n uint64) error {
	for i := uint64(0); i < n; i++ {
		if _, err := frames.Next(); err != nil {
			if err == io.EOF {
				return errSnapshotNeeded
			}
			return err
		}
	}
	return nil
}

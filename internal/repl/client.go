package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"precis/internal/faultinject"
)

// maxSnapshotSize caps an announced snapshot transfer; anything larger is
// treated as corruption rather than allocated.
const maxSnapshotSize = 1 << 30

// Callbacks are how the transport hands the stream to the follower
// engine. All callbacks run on one goroutine, in stream order; an error
// from Snapshot or Record severs the link, and the client reconnects
// from whatever Position then reports.
type Callbacks struct {
	// Position returns the follower's applied position, sent in Hello on
	// every (re)connect. Gen 0 requests a snapshot bootstrap.
	Position func() (gen, records uint64)
	// Snapshot delivers one complete snapshot transfer: the follower's
	// new base state at (gen, 0).
	Snapshot func(gen uint64, raw []byte) error
	// Record delivers one WAL frame payload at (gen, seq).
	Record func(gen, seq uint64, payload []byte) error
	// Frontier reports the primary's durable frontier, refreshed by every
	// record and heartbeat. Optional.
	Frontier func(gen, records, bytes uint64)
	// Ack returns the follower's durably-applied position, sent back to a
	// v2+ primary after every applied message so it can release quorum
	// waits. Gen 0 suppresses the ack. Optional; nil followers never ack
	// and thus never count toward a sync quorum.
	Ack func() (gen, records, bytes uint64)
	// Epoch returns the follower's fencing epoch, carried in Hello on every
	// (re)connect (v3 links only). Optional; nil sends 0.
	Epoch func() uint64
	// ObserveEpoch delivers every epoch the primary stamps on a v3 stream
	// (Welcome, then each Record and Heartbeat). Returning an error severs
	// the link — this is how a follower refuses to follow a stale, deposed
	// primary. Optional.
	ObserveEpoch func(epoch uint64) error
}

// Config tunes the follower transport.
type Config struct {
	// Addr is the primary's replication address (host:port).
	Addr string
	// DialTimeout bounds each connection attempt (0: 5s).
	DialTimeout time.Duration
	// HandshakeTimeout bounds the wait for Welcome (0: 10s).
	HandshakeTimeout time.Duration
	// BackoffMin / BackoffMax bound the reconnect backoff (0: 20ms / 2s).
	// Backoff doubles per fruitless attempt and resets after any session
	// that delivered at least one message. Each sleep is jittered ±20% so
	// a follower fleet doesn't thundering-herd a restarted primary.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// StallTimeout is the rolling read deadline on an established stream:
	// a link that goes silent this long (no records, no heartbeats) is
	// torn down and redialed rather than hanging until TCP keepalive.
	// 0 derives it from the primary's advertised heartbeat interval
	// (3× HeartbeatMS, floored at 1s).
	StallTimeout time.Duration
	// Version pins the protocol version offered in Hello (0: ProtoVersion).
	// Tests pin 1 to exercise the ack-less downgrade path.
	Version uint64
	// Jitter returns a value in [0,1) used to spread reconnect sleeps;
	// nil uses math/rand. Injectable for deterministic backoff tests.
	Jitter func() float64
	// Logger receives reconnect notes; nil uses log.Default().
	Logger *log.Logger
}

// ClientStats snapshots the transport's counters.
type ClientStats struct {
	Connected     bool   `json:"connected"`
	Dials         uint64 `json:"dials"`
	Snapshots     uint64 `json:"snapshots_received"`
	Records       uint64 `json:"records_received"`
	BytesReceived uint64 `json:"bytes_received"`
	AcksSent      uint64 `json:"acks_sent"`
	LastError     string `json:"last_error,omitempty"`
}

// Client maintains one replication link to a primary: dial, handshake,
// apply the stream through Callbacks, and on any failure reconnect with
// exponential backoff, resuming from the follower's last applied
// position. It never guesses past an error — every corrupt or torn
// message tears the session down and restarts cleanly.
type Client struct {
	cfg Config
	cb  Callbacks
	log *log.Logger

	connected atomic.Bool
	dials     atomic.Uint64
	snapshots atomic.Uint64
	records   atomic.Uint64
	bytes     atomic.Uint64
	acks      atomic.Uint64

	errMu   sync.Mutex
	lastErr string
}

// New builds a client; call Run to start it.
func New(cfg Config, cb Callbacks) *Client {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 20 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.Version == 0 {
		cfg.Version = ProtoVersion
	}
	if cfg.Jitter == nil {
		cfg.Jitter = rand.Float64
	}
	lg := cfg.Logger
	if lg == nil {
		lg = log.Default()
	}
	return &Client{cfg: cfg, cb: cb, log: lg}
}

// Stats snapshots the transport counters.
func (c *Client) Stats() ClientStats {
	c.errMu.Lock()
	lastErr := c.lastErr
	c.errMu.Unlock()
	return ClientStats{
		Connected:     c.connected.Load(),
		Dials:         c.dials.Load(),
		Snapshots:     c.snapshots.Load(),
		Records:       c.records.Load(),
		BytesReceived: c.bytes.Load(),
		AcksSent:      c.acks.Load(),
		LastError:     lastErr,
	}
}

// Run drives the reconnect loop until ctx is cancelled.
func (c *Client) Run(ctx context.Context) {
	backoff := c.cfg.BackoffMin
	for {
		progress, err := c.session(ctx)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			c.errMu.Lock()
			c.lastErr = err.Error()
			c.errMu.Unlock()
			c.log.Printf("repl: follower link to %s: %v (reconnecting in %s)", c.cfg.Addr, err, backoff)
		}
		// ±20% jitter so a fleet of followers redialing a restarted
		// primary spreads out instead of arriving in lockstep.
		sleep := time.Duration(float64(backoff) * (0.8 + 0.4*c.cfg.Jitter()))
		select {
		case <-ctx.Done():
			return
		case <-time.After(sleep):
		}
		if progress {
			backoff = c.cfg.BackoffMin
		} else if backoff *= 2; backoff > c.cfg.BackoffMax {
			backoff = c.cfg.BackoffMax
		}
	}
}

// session runs one connection to completion. progress reports whether at
// least one message was applied (resets the backoff).
func (c *Client) session(ctx context.Context) (progress bool, err error) {
	d := net.Dialer{Timeout: c.cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.cfg.Addr)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()
	c.dials.Add(1)

	if err := faultinject.Fire(faultinject.SiteReplHandshake); err != nil {
		return false, fmt.Errorf("handshake: %w", err)
	}
	gen, records := c.cb.Position()
	var epoch uint64
	if c.cb.Epoch != nil {
		epoch = c.cb.Epoch()
	}
	_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.HandshakeTimeout))
	if err := writeMsg(conn, MsgHello, encodeHello(Hello{Version: c.cfg.Version, Gen: gen, Records: records, Epoch: epoch})); err != nil {
		return false, fmt.Errorf("send hello: %w", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(c.cfg.HandshakeTimeout))
	typ, body, err := c.read(conn)
	if err != nil {
		return false, fmt.Errorf("handshake read: %w", err)
	}
	if typ == MsgError {
		return false, fmt.Errorf("primary rejected handshake: %s", body)
	}
	if typ != MsgWelcome {
		return false, &ProtocolError{Msg: typ, Detail: "expected welcome"}
	}
	welcome, err := decodeWelcome(body)
	if err != nil {
		return false, err
	}
	if welcome.Version < MinProtoVersion || welcome.Version > c.cfg.Version {
		return false, fmt.Errorf("primary speaks protocol version %d (want %d..%d)", welcome.Version, MinProtoVersion, c.cfg.Version)
	}
	version := welcome.Version
	if err := c.observeEpoch(version, welcome.Epoch); err != nil {
		return false, err
	}
	// Rolling stall deadline: a silently dead primary must look like a
	// link error, not a forever-blocked read. The primary heartbeats idle
	// links, so any healthy stream refreshes the deadline continuously.
	stall := c.cfg.StallTimeout
	if stall <= 0 {
		hbMS := welcome.HeartbeatMS
		if hbMS == 0 { // v1 primary: no advertised interval, assume 500ms
			hbMS = 500
		}
		stall = 3 * time.Duration(hbMS) * time.Millisecond
		if stall < time.Second {
			stall = time.Second
		}
	}
	_ = conn.SetWriteDeadline(time.Time{})
	c.connected.Store(true)
	defer c.connected.Store(false)

	// Opening ack: tell the primary where our durable state already stands
	// so a caught-up reconnect releases quorum waits immediately.
	lastAck := position{}
	if err := c.maybeAck(conn, version, &lastAck); err != nil {
		return false, err
	}

	// Stream state: the next record position we will accept, plus the
	// in-flight snapshot transfer, if any. A Snapshot=false welcome
	// resumes exactly where we asked; Snapshot=true means a transfer
	// precedes any record.
	expect := position{gen: welcome.Gen, seq: welcome.Records}
	awaitSnap := welcome.Snapshot
	var snapBuf []byte
	var snapGen, snapSize uint64
	inSnap := false

	for {
		_ = conn.SetReadDeadline(time.Now().Add(stall))
		typ, body, err := c.read(conn)
		if err != nil {
			return progress, err
		}
		switch typ {
		case MsgSnapBegin:
			if inSnap {
				return progress, &ProtocolError{Msg: typ, Detail: "snapshot begun inside a snapshot"}
			}
			sb, err := decodeSnapBegin(body)
			if err != nil {
				return progress, err
			}
			if sb.Size > maxSnapshotSize {
				return progress, &ProtocolError{Msg: typ, Detail: fmt.Sprintf("snapshot size %d exceeds limit %d", sb.Size, maxSnapshotSize)}
			}
			inSnap, snapGen, snapSize = true, sb.Gen, sb.Size
			snapBuf = snapBuf[:0]
		case MsgSnapChunk:
			if !inSnap {
				return progress, &ProtocolError{Msg: typ, Detail: "snapshot chunk outside a snapshot"}
			}
			if uint64(len(snapBuf))+uint64(len(body)) > snapSize {
				return progress, &ProtocolError{Msg: typ, Detail: fmt.Sprintf("snapshot overflows announced size %d", snapSize)}
			}
			snapBuf = append(snapBuf, body...)
		case MsgSnapEnd:
			if !inSnap {
				return progress, &ProtocolError{Msg: typ, Detail: "snapshot end outside a snapshot"}
			}
			if uint64(len(snapBuf)) != snapSize {
				return progress, &ProtocolError{Msg: typ, Detail: fmt.Sprintf("snapshot ended at %d of %d bytes", len(snapBuf), snapSize)}
			}
			if err := c.cb.Snapshot(snapGen, snapBuf); err != nil {
				return progress, fmt.Errorf("apply snapshot: %w", err)
			}
			c.snapshots.Add(1)
			inSnap, awaitSnap = false, false
			expect = position{gen: snapGen}
			progress = true
			if err := c.maybeAck(conn, version, &lastAck); err != nil {
				return progress, err
			}
		case MsgRecord:
			if inSnap || awaitSnap {
				return progress, &ProtocolError{Msg: typ, Detail: "record during snapshot transfer"}
			}
			rm, err := decodeRecord(body, version)
			if err != nil {
				return progress, err
			}
			if err := c.observeEpoch(version, rm.Epoch); err != nil {
				return progress, err
			}
			switch {
			case rm.Gen == expect.gen && rm.Seq == expect.seq:
				// in sequence
			case rm.Gen == expect.gen+1 && rm.Seq == 0:
				// generation rotation: the primary streams the new log
				// only after delivering all of the old one.
				expect = position{gen: rm.Gen}
			default:
				return progress, &ProtocolError{Msg: typ, Detail: fmt.Sprintf(
					"out-of-order record (%d,%d), expected (%d,%d)", rm.Gen, rm.Seq, expect.gen, expect.seq)}
			}
			if err := c.cb.Record(rm.Gen, rm.Seq, rm.Payload); err != nil {
				return progress, fmt.Errorf("apply record (%d,%d): %w", rm.Gen, rm.Seq, err)
			}
			expect.seq++
			c.records.Add(1)
			if c.cb.Frontier != nil {
				c.cb.Frontier(rm.FrontierGen, rm.FrontierRecords, rm.FrontierBytes)
			}
			progress = true
			if err := c.maybeAck(conn, version, &lastAck); err != nil {
				return progress, err
			}
		case MsgHeartbeat:
			hb, err := decodeHeartbeat(body, version)
			if err != nil {
				return progress, err
			}
			if err := c.observeEpoch(version, hb.Epoch); err != nil {
				return progress, err
			}
			if c.cb.Frontier != nil {
				c.cb.Frontier(hb.FrontierGen, hb.FrontierRecords, hb.FrontierBytes)
			}
			// An interval-fsync follower's durable frontier advances between
			// records; heartbeats give those advances a ride back.
			if err := c.maybeAck(conn, version, &lastAck); err != nil {
				return progress, err
			}
		case MsgError:
			return progress, fmt.Errorf("primary error: %s", body)
		default:
			return progress, &ProtocolError{Msg: typ, Detail: "unexpected message"}
		}
	}
}

// observeEpoch forwards a v3 stream's epoch stamp to the follower engine.
// An error severs the session before the message it rode in on is applied —
// a stale primary's records must never reach the follower's WAL.
func (c *Client) observeEpoch(version, epoch uint64) error {
	if version < 3 || c.cb.ObserveEpoch == nil {
		return nil
	}
	if err := c.cb.ObserveEpoch(epoch); err != nil {
		return fmt.Errorf("epoch check: %w", err)
	}
	return nil
}

// maybeAck reports the follower's durable position to a v2+ primary,
// skipping no-ops (nil callback, unbootstrapped follower, position
// unchanged since the last ack). Fires the repl.ack.send fault site; an
// injected ErrInjectCorrupt sends the frame genuinely corrupted for the
// primary's checksums to catch.
func (c *Client) maybeAck(conn net.Conn, version uint64, last *position) error {
	if version < 2 || c.cb.Ack == nil {
		return nil
	}
	gen, records, bytes := c.cb.Ack()
	if gen == 0 || (last.gen == gen && last.seq == records) {
		return nil
	}
	corrupt := false
	if err := faultinject.Fire(faultinject.SiteReplAckSend); err != nil {
		if errors.Is(err, ErrInjectCorrupt) {
			corrupt = true
		} else {
			return fmt.Errorf("send ack: %w", err)
		}
	}
	payload := make([]byte, 0, 32)
	payload = append(payload, byte(MsgAck))
	payload = append(payload, encodeAck(Ack{Gen: gen, Records: records, Bytes: bytes})...)
	frame := frameMsg(payload)
	if corrupt {
		frame[len(frame)-1] ^= 0x40
	}
	_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.HandshakeTimeout))
	if _, err := conn.Write(frame); err != nil {
		return fmt.Errorf("send ack: %w", err)
	}
	*last = position{gen: gen, seq: records}
	c.acks.Add(1)
	return nil
}

// read fires the repl.recv fault site, then reads one verified message,
// counting wire bytes.
func (c *Client) read(conn net.Conn) (MsgType, []byte, error) {
	if err := faultinject.Fire(faultinject.SiteReplRecv); err != nil {
		return 0, nil, fmt.Errorf("recv: %w", err)
	}
	typ, body, err := readMsg(&countReader{r: conn, n: &c.bytes})
	if err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, fmt.Errorf("primary closed the link: %w", err)
		}
		return 0, nil, err
	}
	return typ, body, nil
}

// countReader tallies bytes read into an atomic counter.
type countReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(uint64(n))
	return n, err
}

package core

import (
	"sort"

	"precis/internal/storage"
)

// TupleWeights implements the paper's §7 direction — "we are investigating
// the possibility of having weights on data values as well": a weight per
// tuple expressing the importance of individual data items (a blockbuster
// movie matters more than an obscure one). When the cardinality constraint
// forces a choice among candidate tuples, higher-weight tuples win; tuples
// without an entry default to weight 0, and ties break on tuple id so
// results stay deterministic.
type TupleWeights map[string]map[storage.TupleID]float64

// Set assigns a weight to one tuple.
func (w TupleWeights) Set(relation string, id storage.TupleID, weight float64) {
	m := w[relation]
	if m == nil {
		m = make(map[storage.TupleID]float64)
		w[relation] = m
	}
	m[id] = weight
}

// Weight returns the weight of a tuple (0 when unset).
func (w TupleWeights) Weight(relation string, id storage.TupleID) float64 {
	return w[relation][id]
}

// order sorts ids in place by decreasing weight, then ascending id.
func (w TupleWeights) order(relation string, ids []storage.TupleID) {
	if w == nil {
		return
	}
	m := w[relation]
	if len(m) == 0 {
		return
	}
	sort.SliceStable(ids, func(i, j int) bool {
		wi, wj := m[ids[i]], m[ids[j]]
		if wi != wj {
			return wi > wj
		}
		return ids[i] < ids[j]
	})
}

package core

import (
	"container/heap"
	"fmt"
	"sort"

	"precis/internal/schemagraph"
)

// ResultSchema is the output of the Result Schema Generator: the sub-graph
// G' of the database schema graph containing the relations related to a
// query, the attributes to project on each, and the bookkeeping the Result
// Database Generator needs (join edges in weight order, in-degrees, seed
// attribution).
type ResultSchema struct {
	// Graph is the result schema graph G' (a sub-graph of the input graph,
	// with the same weights on the surviving edges).
	Graph *schemagraph.Graph
	// Seeds are the relations containing the query tokens, in input order.
	Seeds []string
	// Paths are the accepted projection paths P_d in acceptance order
	// (decreasing weight, shorter first among equal weights).
	Paths []*schemagraph.Path
	// seedsByRelation maps each relation of G' to the set of seed relations
	// whose accepted paths visit it (the paper's in-degree counts these).
	seedsByRelation map[string]map[string]bool
}

// Relations returns the relations of G' in deterministic order.
func (rs *ResultSchema) Relations() []string { return rs.Graph.Relations() }

// Projections returns the projected attributes of rel in G', in the
// relation's declaration order.
func (rs *ResultSchema) Projections(rel string) []string {
	n := rs.Graph.Relation(rel)
	if n == nil {
		return nil
	}
	var out []string
	for _, p := range n.Projections() {
		out = append(out, p.Attribute)
	}
	return out
}

// SeedInDegree returns the paper's in-degree of a relation: the number of
// input (seed) relations whose accepted paths include it.
func (rs *ResultSchema) SeedInDegree(rel string) int { return len(rs.seedsByRelation[rel]) }

// JoinInDegree returns the number of join edges of G' arriving at rel; the
// result database generator postpones joins departing from a relation until
// all arriving joins have executed, and this is the counter it decrements.
func (rs *ResultSchema) JoinInDegree(rel string) int {
	n := 0
	for _, e := range rs.Graph.JoinEdges() {
		if e.To == rel {
			n++
		}
	}
	return n
}

// SeedDistance returns each relation's join-edge distance from the nearest
// seed within G' (seeds are at distance 0; unreachable relations get a
// large sentinel). The data generator uses it to break ties among
// equal-weight joins: edges departing closer to the seeds execute first,
// matching the paper's intuition that shorter paths connect more closely
// related entities.
func (rs *ResultSchema) SeedDistance() map[string]int {
	const unreachable = 1 << 20
	dist := make(map[string]int, len(rs.Graph.Relations()))
	for _, rel := range rs.Graph.Relations() {
		dist[rel] = unreachable
	}
	queue := make([]string, 0, len(rs.Seeds))
	for _, s := range rs.Seeds {
		if _, ok := dist[s]; ok {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	edges := rs.Graph.JoinEdges()
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range edges {
			if e.From != cur {
				continue
			}
			if d := dist[cur] + 1; d < dist[e.To] {
				dist[e.To] = d
				queue = append(queue, e.To)
			}
		}
	}
	return dist
}

// JoinEdgesByWeight returns the join edges of G' in the order the result
// database generator considers them: decreasing weight; among equal
// weights, edges whose source is nearer a seed first; remaining ties break
// on the edge key for determinism.
func (rs *ResultSchema) JoinEdgesByWeight() []*schemagraph.JoinEdge {
	edges := rs.Graph.JoinEdges()
	dist := rs.SeedDistance()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Weight != edges[j].Weight {
			return edges[i].Weight > edges[j].Weight
		}
		if dist[edges[i].From] != dist[edges[j].From] {
			return dist[edges[i].From] < dist[edges[j].From]
		}
		return edges[i].Key() < edges[j].Key()
	})
	return edges
}

// NumAttributes returns the number of projected attributes across G'.
func (rs *ResultSchema) NumAttributes() int { return rs.Graph.NumProjections() }

// pathQueue is the priority queue QP of candidate paths, ordered by
// decreasing weight then increasing length (Path.Less).
type pathQueue []*schemagraph.Path

func (q pathQueue) Len() int           { return len(q) }
func (q pathQueue) Less(i, j int) bool { return q[i].Less(q[j]) }
func (q pathQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pathQueue) Push(x any)        { *q = append(*q, x.(*schemagraph.Path)) }
func (q *pathQueue) Pop() any {
	old := *q
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return p
}

// SchemaGeneratorOptions tune the generator; the zero value is the paper's
// algorithm. DisablePruning turns off the expansion cut-off (ablation).
type SchemaGeneratorOptions struct {
	DisablePruning bool
}

// GenerateSchema runs the Result Schema Algorithm (paper Figure 3): a
// best-first traversal of the weighted schema graph g starting from the
// seed relations (those containing query tokens), gradually constructing
// projection paths in decreasing weight order until the degree constraint d
// fails. It returns the result schema G'.
func GenerateSchema(g *schemagraph.Graph, seeds []string, d DegreeConstraint) (*ResultSchema, error) {
	return GenerateSchemaOpts(g, seeds, d, SchemaGeneratorOptions{})
}

// GenerateSchemaOpts is GenerateSchema with explicit options.
func GenerateSchemaOpts(g *schemagraph.Graph, seeds []string, d DegreeConstraint, opts SchemaGeneratorOptions) (*ResultSchema, error) {
	if d == nil {
		return nil, fmt.Errorf("core: nil degree constraint")
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("core: no seed relations (query tokens matched nothing)")
	}
	seen := make(map[string]bool, len(seeds))
	for _, s := range seeds {
		if g.Relation(s) == nil {
			return nil, fmt.Errorf("core: seed relation %s is not in the schema graph", s)
		}
		if seen[s] {
			return nil, fmt.Errorf("core: duplicate seed relation %s", s)
		}
		seen[s] = true
	}

	rs := &ResultSchema{
		Graph:           schemagraph.New(),
		Seeds:           append([]string(nil), seeds...),
		seedsByRelation: make(map[string]map[string]bool),
	}

	// Step 1: QP starts with every edge attached to a seed relation, as a
	// length-1 path.
	qp := &pathQueue{}
	for _, seed := range seeds {
		base := schemagraph.NewPath(seed)
		node := g.Relation(seed)
		for _, pr := range node.Projections() {
			if p := base.ExtendProjection(pr); p != nil {
				heap.Push(qp, p)
			}
		}
		for _, e := range node.Out() {
			if p := base.ExtendJoin(e); p != nil {
				heap.Push(qp, p)
			}
		}
	}

	// Step 2: best-first expansion.
	for qp.Len() > 0 {
		p := heap.Pop(qp).(*schemagraph.Path)

		// 2.2: candidates arrive in decreasing weight, so the first failure
		// ends the loop (the formal prefix semantics of §5.1).
		if !d.Accept(rs.Paths, p) {
			break
		}

		if p.IsProjection() {
			// 2.3 (projection): accept the path into P_d and fold its
			// nodes and edges into G'.
			rs.Paths = append(rs.Paths, p)
			rs.merge(p)
			continue
		}

		// 2.3 (join): expand p with every edge attached to its end, in
		// decreasing weight order; prune the remainder at the first
		// expansion that fails the constraint.
		end := g.Relation(p.End())
		exts := make([]*schemagraph.Path, 0, 8)
		for _, pr := range end.Projections() {
			if np := p.ExtendProjection(pr); np != nil {
				exts = append(exts, np)
			}
		}
		for _, e := range end.Out() {
			if np := p.ExtendJoin(e); np != nil {
				exts = append(exts, np)
			}
		}
		sort.Slice(exts, func(i, j int) bool { return exts[i].Less(exts[j]) })
		for _, np := range exts {
			if !opts.DisablePruning && !d.Accept(rs.Paths, np) {
				// Extensions are sorted by decreasing weight: everything
				// after this one fails too, for the weight-monotone
				// constraints of Table 1.
				break
			}
			heap.Push(qp, np)
		}
	}

	// The seed relations are part of the result even if only their heading
	// projection survived; make sure each seed node exists so the data
	// generator can place the matching tuples.
	for _, seed := range seeds {
		rs.ensureRelation(seed)
		rs.attributeSeed(seed, seed)
	}
	return rs, nil
}

// ensureRelation copies the relation node (name, heading, sentence template)
// into G' if absent.
func (rs *ResultSchema) ensureRelation(name string) {
	if rs.Graph.Relation(name) != nil {
		return
	}
	n := rs.Graph.AddRelation(name)
	n.Heading = ""
	rs.seedsByRelation[name] = make(map[string]bool)
}

func (rs *ResultSchema) attributeSeed(rel, seed string) {
	set := rs.seedsByRelation[rel]
	if set == nil {
		set = make(map[string]bool)
		rs.seedsByRelation[rel] = set
	}
	set[seed] = true
}

// merge folds an accepted projection path into G': its relation nodes, join
// edges and final projection edge, and the seed attribution of every
// relation it visits.
func (rs *ResultSchema) merge(p *schemagraph.Path) {
	rs.ensureRelation(p.Start)
	rs.attributeSeed(p.Start, p.Start)
	for _, e := range p.Joins {
		rs.ensureRelation(e.To)
		rs.attributeSeed(e.To, p.Start)
		// AddJoin is idempotent for an existing (from,to,cols) edge.
		if _, err := rs.Graph.AddJoin(e.From, e.To, e.FromCol, e.ToCol, e.Weight); err != nil {
			panic(err) // unreachable: nodes were just ensured
		}
		if lbl := e.Label; lbl != "" {
			rs.setJoinLabel(e)
		}
	}
	if _, err := rs.Graph.AddProjection(p.Proj.Relation, p.Proj.Attribute, p.Proj.Weight); err != nil {
		panic(err)
	}
	if n := rs.Graph.Relation(p.Proj.Relation); n != nil {
		if pr := n.Projection(p.Proj.Attribute); pr != nil {
			pr.Label = p.Proj.Label
		}
	}
}

// setJoinLabel copies the NLG label onto the matching edge in G'.
func (rs *ResultSchema) setJoinLabel(src *schemagraph.JoinEdge) {
	n := rs.Graph.Relation(src.From)
	if n == nil {
		return
	}
	for _, e := range n.Out() {
		if e.To == src.To && e.FromCol == src.FromCol && e.ToCol == src.ToCol {
			e.Label = src.Label
		}
	}
}

// CopyAnnotations copies heading attributes and sentence templates for the
// relations of G' from the full graph, so the translator can render the
// result. Called by the query pipeline after schema generation.
func (rs *ResultSchema) CopyAnnotations(g *schemagraph.Graph) {
	for _, name := range rs.Graph.Relations() {
		src := g.Relation(name)
		dst := rs.Graph.Relation(name)
		if src == nil || dst == nil {
			continue
		}
		dst.Sentence = src.Sentence
		if src.Heading != "" {
			// The heading attribute is by definition always present in a
			// result (§5.3): its projection edge has weight 1.
			if err := rs.Graph.SetHeading(name, src.Heading); err == nil {
				if sp := src.Projection(src.Heading); sp != nil {
					if dp := dst.Projection(src.Heading); dp != nil {
						dp.Label = sp.Label
					}
				}
			}
		}
	}
}

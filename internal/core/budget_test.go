package core

// Tests for the resource budget: tracker unit semantics, budget-truncated
// generation (prefix exactness, determinism across pool sizes, dangling-FK
// trimming), deadline truncation under a fake clock, and the cooperative
// context checks inside the per-join tuple loops.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"precis/internal/dataset"
	"precis/internal/sqlx"
	"precis/internal/storage"
)

func TestBudgetIsZero(t *testing.T) {
	if !(Budget{}).IsZero() {
		t.Fatal("zero Budget must report IsZero")
	}
	for _, b := range []Budget{
		{Deadline: time.Now()},
		{MaxTuples: 1},
		{MaxJoinSteps: 1},
		{MaxResultBytes: 1},
	} {
		if b.IsZero() {
			t.Fatalf("budget %+v must not report IsZero", b)
		}
	}
	if newBudgetTracker(Budget{}) != nil {
		t.Fatal("zero budget must produce a nil tracker")
	}
}

func TestBudgetTrackerNilReceiver(t *testing.T) {
	var bt *budgetTracker
	if bt.Reason() != TruncateNone || bt.exhausted() || bt.checkDeadline() {
		t.Fatal("nil tracker must be a permissive no-op")
	}
	if !bt.admitStep() || !bt.admitTuple(nil, false) {
		t.Fatal("nil tracker must admit everything")
	}
}

func TestBudgetTrackerTupleAndByteAccounting(t *testing.T) {
	row := []storage.Value{storage.Int(1), storage.String("abc")}
	bt := newBudgetTracker(Budget{MaxTuples: 2})
	if !bt.admitTuple(row, false) || !bt.admitTuple(row, false) {
		t.Fatal("first two tuples must be admitted")
	}
	if bt.admitTuple(row, false) {
		t.Fatal("third tuple must be refused")
	}
	if got := bt.Reason(); got != TruncateTupleBudget {
		t.Fatalf("reason = %q, want %q", got, TruncateTupleBudget)
	}
	// Seed rows are always admitted, even after exhaustion, but charged.
	if !bt.admitTuple(row, true) {
		t.Fatal("seed tuple must always be admitted")
	}

	bt = newBudgetTracker(Budget{MaxResultBytes: 1})
	if !bt.admitTuple(row, false) {
		t.Fatal("the first tuple is admitted before the byte check can trip")
	}
	if bt.admitTuple(row, false) {
		t.Fatal("byte budget exceeded, second tuple must be refused")
	}
	if got := bt.Reason(); got != TruncateByteBudget {
		t.Fatalf("reason = %q, want %q", got, TruncateByteBudget)
	}
}

func TestBudgetTrackerStepAccounting(t *testing.T) {
	bt := newBudgetTracker(Budget{MaxJoinSteps: 2})
	if !bt.admitStep() || !bt.admitStep() {
		t.Fatal("first two steps must be admitted")
	}
	if bt.admitStep() {
		t.Fatal("third step must be refused")
	}
	if got := bt.Reason(); got != TruncateStepBudget {
		t.Fatalf("reason = %q, want %q", got, TruncateStepBudget)
	}
}

func TestBudgetTrackerDeadlineFakeClock(t *testing.T) {
	clock := time.Unix(1000, 0)
	bt := newBudgetTracker(Budget{
		Deadline: time.Unix(1005, 0),
		Now:      func() time.Time { return clock },
	})
	if bt.checkDeadline() {
		t.Fatal("deadline not reached yet")
	}
	clock = time.Unix(1006, 0)
	if !bt.checkDeadline() {
		t.Fatal("deadline passed, check must trip")
	}
	if got := bt.Reason(); got != TruncateDeadline {
		t.Fatalf("reason = %q, want %q", got, TruncateDeadline)
	}
	// First trip wins: a later tuple refusal must not overwrite the reason.
	if bt.admitTuple(nil, false) {
		t.Fatal("exhausted tracker must refuse tuples")
	}
	if got := bt.Reason(); got != TruncateDeadline {
		t.Fatalf("reason overwritten: %q", got)
	}
}

// TestBudgetTruncatedGeneration runs the §5.2 example under a tuple budget
// and asserts the run is marked partial, stays within budget, keeps the
// seeds, and is byte-identical across pool sizes.
func TestBudgetTruncatedGeneration(t *testing.T) {
	for _, strat := range []Strategy{StrategyNaive, StrategyRoundRobin} {
		eng, rs, seeds := exampleSetup(t, 0.1)
		full, err := GenerateDatabaseOpts(eng, rs, seeds, Unlimited(), strat, DBGenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		seedCount := 0
		for _, ids := range seeds {
			seedCount += len(ids)
		}
		budget := seedCount + 2
		if full.DB.TotalTuples() <= budget {
			t.Fatalf("example answer too small (%d tuples) to exercise MaxTuples=%d",
				full.DB.TotalTuples(), budget)
		}
		ref, err := GenerateDatabaseOpts(eng, rs, seeds, Unlimited(), strat,
			DBGenOptions{Budget: Budget{MaxTuples: budget}})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Truncation != TruncateTupleBudget || !ref.Partial() {
			t.Fatalf("%v: truncation = %q partial=%v, want tuple-budget",
				strat, ref.Truncation, ref.Partial())
		}
		if got := ref.DB.TotalTuples(); got != budget {
			t.Fatalf("%v: partial answer has %d tuples, budget is %d", strat, got, budget)
		}
		for _, workers := range []int{2, 8} {
			rd, err := GenerateDatabaseOpts(eng, rs, seeds, Unlimited(), strat,
				DBGenOptions{Workers: workers, Budget: Budget{MaxTuples: budget}})
			if err != nil {
				t.Fatal(err)
			}
			if rd.Truncation != ref.Truncation {
				t.Fatalf("%v workers=%d: truncation %q, serial %q",
					strat, workers, rd.Truncation, ref.Truncation)
			}
			if rd.DB.TotalTuples() != ref.DB.TotalTuples() {
				t.Fatalf("%v workers=%d: %d tuples, serial %d",
					strat, workers, rd.DB.TotalTuples(), ref.DB.TotalTuples())
			}
			for _, rel := range ref.DB.RelationNames() {
				if rd.DB.Relation(rel).Len() != ref.DB.Relation(rel).Len() {
					t.Fatalf("%v workers=%d: relation %s differs", strat, workers, rel)
				}
			}
		}
	}
}

// TestBudgetPartialTrimsDanglingForeignKeys asserts a truncated result
// database passes its own integrity check: FK edges whose referenced tuples
// were cut are dropped rather than left dangling.
func TestBudgetPartialTrimsDanglingForeignKeys(t *testing.T) {
	db, g, err := dataset.Chain(dataset.ChainConfig{Relations: 3, RowsPerRel: 40, Fanout: 3, Seed: 3, UniformRows: true})
	if err != nil {
		t.Fatal(err)
	}
	seeds, rels := chainSeeds(t, db, "tokR0")
	rs, err := GenerateSchema(g, rels, MinPathWeight(0.01))
	if err != nil {
		t.Fatal(err)
	}
	rd, err := GenerateDatabaseOpts(sqlx.NewEngine(db), rs, seeds, Unlimited(), StrategyNaive,
		DBGenOptions{Budget: Budget{MaxTuples: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Partial() {
		t.Fatal("budget did not truncate the chain answer")
	}
	if v := rd.DB.CheckIntegrity(); len(v) != 0 {
		t.Fatalf("partial answer has %d dangling references: %+v", len(v), v)
	}
}

// TestBudgetExpiredDeadlineKeepsSeeds: a deadline that lapsed before
// generation still yields the full seed set (never an empty answer) marked
// with the deadline reason.
func TestBudgetExpiredDeadlineKeepsSeeds(t *testing.T) {
	eng, rs, seeds := exampleSetup(t, 0.1)
	rd, err := GenerateDatabaseOpts(eng, rs, seeds, Unlimited(), StrategyAuto,
		DBGenOptions{Budget: Budget{
			Deadline: time.Unix(1000, 0),
			Now:      func() time.Time { return time.Unix(2000, 0) },
		}})
	if err != nil {
		t.Fatal(err)
	}
	if rd.Truncation != TruncateDeadline {
		t.Fatalf("truncation = %q, want deadline", rd.Truncation)
	}
	want := 0
	for _, ids := range seeds {
		want += len(ids)
	}
	if got := rd.DB.TotalTuples(); got != want {
		t.Fatalf("expired-deadline answer has %d tuples, want the %d seeds", got, want)
	}
}

// TestContextCanceledBeforeGeneration is the regression test for the
// cooperative cancellation threading: a pre-canceled context must abort
// generation with a wrapped context.Canceled for every strategy and pool
// size, observed within one tuple pick (no answer is returned at all).
func TestContextCanceledBeforeGeneration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strat := range []Strategy{StrategyNaive, StrategyRoundRobin} {
		for _, workers := range []int{0, 4} {
			eng, rs, seeds := exampleSetup(t, 0.1)
			rd, err := GenerateDatabaseOpts(eng, rs, seeds, Unlimited(), strat,
				DBGenOptions{Context: ctx, Workers: workers})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%v workers=%d: err = %v, want context.Canceled", strat, workers, err)
			}
			if rd != nil {
				t.Fatalf("%v workers=%d: canceled generation returned an answer", strat, workers)
			}
		}
	}
}

// chainSeeds resolves a token on a chain dataset the way the engine would.
func chainSeeds(t *testing.T, db *storage.Database, token string) (map[string][]storage.TupleID, []string) {
	t.Helper()
	seeds := map[string][]storage.TupleID{}
	var rels []string
	for _, rel := range db.RelationNames() {
		r := db.Relation(rel)
		var ids []storage.TupleID
		r.Scan(func(tu storage.Tuple) bool {
			for _, v := range tu.Values {
				if strings.Contains(v.String(), token) {
					ids = append(ids, tu.ID)
					break
				}
			}
			return true
		})
		if len(ids) > 0 {
			seeds[rel] = ids
			rels = append(rels, rel)
		}
	}
	if len(seeds) == 0 {
		t.Fatalf("token %q not found in dataset", token)
	}
	return seeds, rels
}

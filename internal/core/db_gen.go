package core

import (
	"context"
	"fmt"
	"sort"

	"precis/internal/faultinject"
	"precis/internal/obs"
	"precis/internal/schemagraph"
	"precis/internal/sqlx"
	"precis/internal/storage"
)

// Strategy selects how tuples joining a populated relation are retrieved
// from the original database (paper §5.2).
type Strategy uint8

const (
	// StrategyAuto applies Round-Robin only to 1-n joins, "wherever
	// required", and NaïveQ everywhere else — the practical configuration
	// the paper recommends.
	StrategyAuto Strategy = iota
	// StrategyNaive always issues a single top-k query per join (Oracle
	// RowNum style). On 1-n joins it risks starving some driving tuples.
	StrategyNaive
	// StrategyRoundRobin always opens one scan per driving tuple and takes
	// one joining tuple from each scan per round.
	StrategyRoundRobin
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyNaive:
		return "naiveq"
	case StrategyRoundRobin:
		return "roundrobin"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// GenStats reports the physical work of one result-database generation; its
// units match the paper's cost model (queries issued, index probes, tuple
// reads).
type GenStats struct {
	Queries           int
	SQL               sqlx.Stats
	JoinsExecuted     int
	TuplesPerRelation map[string]int
	TotalTuples       int
}

// ResultDatabase is the précis: a new database D' that is a sub-database of
// the original, together with the result schema it instantiates and the
// generation statistics.
type ResultDatabase struct {
	DB     *storage.Database
	Schema *ResultSchema
	Stats  GenStats
	// Truncation is non-empty when a resource Budget stopped generation
	// early; the database then holds the deterministic prefix built before
	// the budget ran out (see DBGenOptions.Budget).
	Truncation TruncationReason
}

// Partial reports whether the result is a budget-truncated prefix rather
// than the complete constrained answer.
func (rd *ResultDatabase) Partial() bool { return rd.Truncation != TruncateNone }

// DisplayColumns returns the columns of rel meant for presentation: the
// projected attributes of the result schema, excluding join plumbing that
// was fetched only to execute joins (§5.2: "attributes required for joins
// ... will not show in the final answer").
func (rd *ResultDatabase) DisplayColumns(rel string) []string {
	return rd.Schema.Projections(rel)
}

// DBGenOptions expose the design choices of the Result Database Generator
// for ablation studies; the zero value is the paper's algorithm.
type DBGenOptions struct {
	// FIFOJoins executes join edges in result-schema declaration order
	// instead of decreasing weight order (ablates "relations most related
	// to the query are populated first").
	FIFOJoins bool
	// DisablePostponement executes a join as soon as its source is
	// populated even if arrivals at the source are still pending (ablates
	// the in-degree bookkeeping; under tight budgets, tuples reached only
	// through late-arriving paths lose their downstream joins).
	DisablePostponement bool
	// Weights enables the paper's §7 extension: per-tuple importance.
	// When the cardinality budget forces a choice, heavier tuples are
	// retrieved first (seeds, NaïveQ results, and Round-Robin scans all
	// honour the ordering).
	Weights TupleWeights
	// Workers bounds the fetch worker pool. Values <= 1 run the serial
	// algorithm (the seed behavior). Values > 1 fetch independent frontier
	// joins and the per-relation seed queries concurrently, while inserts
	// and budget accounting stay serialized in the serial algorithm's
	// order, so the produced result database is byte-identical to the
	// serial path for any worker count. GenStats may count slightly more
	// physical work in the parallel path (a fetch issued under an
	// optimistic budget can be discarded when a concurrent frontier edge
	// consumed the remaining total-tuple budget first).
	Workers int
	// Context, when non-nil, cancels generation cooperatively: the ctx is
	// observed between scheduling steps and inside the per-join tuple
	// loops (scan handout, round-robin rounds, and the per-row apply
	// loop), so a cancellation is seen within one tuple pick rather than
	// one stage. The error returned wraps ctx.Err() so callers can detect
	// timeouts. Cancellation discards the answer; to keep the prefix
	// instead, set a Budget deadline.
	Context context.Context
	// Budget bounds the physical resources of this generation. When a
	// dimension runs out, the run stops at the next deterministic
	// checkpoint and returns the prefix built so far with the
	// ResultDatabase's Truncation set — not an error. The zero value
	// imposes no bounds and costs nothing.
	Budget Budget
	// Trace, when non-nil, records fine-grained generation steps (seed
	// placement, every join edge) with the tuples they materialized and
	// the queries they issued. Steps are recorded on the coordination
	// goroutine only, so recording needs no locks and never perturbs the
	// parallel fetch pool. nil (the default) is a strict no-op.
	Trace *obs.Trace
}

// Fetcher is the generator's view of the original database: a read-only
// SELECT executor plus the schema catalog. *sqlx.Engine satisfies it
// directly (the single-engine path); internal/shard provides a
// scatter/gather implementation that fans each statement out across shard
// engines and merges the results deterministically. ExecStmt must be safe
// for concurrent use; AccumulateStats is only called from the serial apply
// phase.
type Fetcher interface {
	ExecStmt(st sqlx.Stmt) (*sqlx.Result, error)
	Database() *storage.Database
	AccumulateStats(s sqlx.Stats)
}

// generator carries the state of one Figure 5 run.
type generator struct {
	eng     Fetcher
	rs      *ResultSchema
	card    CardinalityConstraint
	strat   Strategy
	opts    DBGenOptions
	workers int
	ctx     context.Context
	bt      *budgetTracker // nil when no budget was set
	trace   *obs.Trace     // nil when the query is untraced
	out     *storage.Database
	perRel  map[string]int
	total   int
	stats   GenStats
	// columns fetched per relation (display + plumbing), in original order.
	cols map[string][]string
}

// fetched is the outcome of one fetch task: candidate rows (rowid first,
// then the fetched columns) in the deterministic order the serial algorithm
// would insert them, plus the physical work the fetch performed. The apply
// phase inserts a prefix of rows bounded by the live cardinality budget.
type fetched struct {
	rows    [][]storage.Value
	queries int
	sql     sqlx.Stats
}

// GenerateDatabase runs the Result Database Algorithm (paper Figure 5).
// eng wraps the original database; rs is the result schema G'; seedTuples
// maps each seed relation to the tuple ids the inverted index matched; c is
// the cardinality constraint and strat the retrieval strategy.
func GenerateDatabase(eng Fetcher, rs *ResultSchema, seedTuples map[string][]storage.TupleID, c CardinalityConstraint, strat Strategy) (*ResultDatabase, error) {
	return GenerateDatabaseOpts(eng, rs, seedTuples, c, strat, DBGenOptions{})
}

// GenerateDatabaseOpts is GenerateDatabase with explicit ablation options.
func GenerateDatabaseOpts(eng Fetcher, rs *ResultSchema, seedTuples map[string][]storage.TupleID, c CardinalityConstraint, strat Strategy, opts DBGenOptions) (*ResultDatabase, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil cardinality constraint")
	}
	for rel := range seedTuples {
		if rs.Graph.Relation(rel) == nil {
			return nil, fmt.Errorf("core: seed tuples for %s, which is not in the result schema", rel)
		}
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	g := &generator{
		eng:     eng,
		rs:      rs,
		card:    c,
		strat:   strat,
		opts:    opts,
		workers: workers,
		ctx:     ctx,
		bt:      newBudgetTracker(opts.Budget),
		trace:   opts.Trace,
		out:     storage.NewDatabase("precis"),
		perRel:  make(map[string]int),
		cols:    make(map[string][]string),
	}
	g.stats.TuplesPerRelation = g.perRel
	if err := g.buildResultSchemas(); err != nil {
		return nil, err
	}
	if err := g.placeSeeds(seedTuples); err != nil {
		return nil, err
	}
	if err := g.executeJoins(); err != nil {
		return nil, err
	}
	g.stats.TotalTuples = g.total
	rd := &ResultDatabase{DB: g.out, Schema: g.rs, Stats: g.stats, Truncation: g.bt.Reason()}
	if rd.Partial() {
		g.trimDanglingForeignKeys()
	}
	return rd, nil
}

// trimDanglingForeignKeys drops, from a truncated result database, foreign
// keys whose referencing tuples dangle: a budget cut can stop generation
// after a child relation was populated but before its parent side filled
// in, and a partial précis must still be a valid database on its own (the
// paper's §1 promise). Complete answers never need this — the generator
// only materializes children of parents already present.
func (g *generator) trimDanglingForeignKeys() {
	violations := g.out.CheckIntegrity()
	if len(violations) == 0 {
		return
	}
	bad := make(map[storage.ForeignKey]bool, len(violations))
	for _, v := range violations {
		bad[v.ForeignKey] = true
	}
	var keep []storage.ForeignKey
	for _, fk := range g.out.ForeignKeys() {
		if !bad[fk] {
			keep = append(keep, fk)
		}
	}
	g.out.SetForeignKeys(keep)
}

// ctxErr reports a cancellation of the surrounding context, if any.
func (g *generator) ctxErr() error {
	select {
	case <-g.ctx.Done():
		return fmt.Errorf("core: result database generation canceled: %w", g.ctx.Err())
	default:
		return nil
	}
}

// execFetch runs one generated SELECT against the original database.
// Generated queries are built as ASTs and executed through ExecStmt, which
// skips the render/lex/parse round-trip (it dominated CPU profiles of
// round-robin workloads, whose per-tuple fetches issue hundreds of tiny
// queries) and — unlike Exec — does not touch the engine's shared stats
// accumulator, so concurrent fetch tasks can share g.eng for its read-only
// SELECT path. Each task keeps its stats in the returned Result; the apply
// phase folds them back into the caller's engine serially.
func (g *generator) execFetch(st *sqlx.SelectStmt) (*sqlx.Result, error) {
	return g.eng.ExecStmt(st)
}

// buildResultSchemas creates in the output database, for every relation of
// G', a relation whose columns are the projected attributes plus the join
// columns of incident G' edges, in the original column order.
func (g *generator) buildResultSchemas() error {
	orig := g.eng.Database()
	for _, name := range g.rs.Relations() {
		rel := orig.Relation(name)
		if rel == nil {
			return fmt.Errorf("core: result schema names %s, which is missing from the database", name)
		}
		need := make(map[string]bool)
		for _, a := range g.rs.Projections(name) {
			need[a] = true
		}
		for _, e := range g.rs.Graph.JoinEdges() {
			if e.From == name {
				need[e.FromCol] = true
			}
			if e.To == name {
				need[e.ToCol] = true
			}
		}
		var cols []string
		for _, c := range rel.Schema().Columns {
			if need[c.Name] {
				cols = append(cols, c.Name)
			}
		}
		if len(cols) == 0 {
			// A relation can enter G' purely as a junction on a path (CAST
			// in the running example): fall back to its key or first column
			// so it remains representable.
			if k := rel.Schema().Key; k != "" {
				cols = []string{k}
			} else {
				cols = []string{rel.Schema().Columns[0].Name}
			}
		}
		sub, err := rel.Schema().Project(cols)
		if err != nil {
			return err
		}
		if _, err := g.out.CreateRelation(sub); err != nil {
			return err
		}
		g.cols[name] = cols
	}
	// Foreign keys of the original whose endpoints survive carry over, so
	// the précis is a database with its own constraints (paper §1).
	for _, fk := range orig.ForeignKeys() {
		from := g.out.Relation(fk.FromRelation)
		to := g.out.Relation(fk.ToRelation)
		if from == nil || to == nil {
			continue
		}
		if !from.Schema().HasColumn(fk.FromColumn) || !to.Schema().HasColumn(fk.ToColumn) {
			continue
		}
		if err := g.out.AddForeignKey(fk); err != nil {
			return err
		}
	}
	return nil
}

// cardBudget returns the cardinality constraint's remaining allowance for
// rel (the paper's c(.) predicate, unaware of resource budgets).
func (g *generator) cardBudget(rel string) int {
	return g.card.Budget(rel, g.perRel, g.total)
}

// budget returns the fetch allowance for rel: the cardinality budget
// tightened by the resource budget's remaining tuple allowance plus one.
// The +1 sentinel matters: both fetch paths exclude tuples already in D',
// so fetching one row past the allowance guarantees the apply loop sees a
// genuinely new tuple it must refuse — which is what records the
// truncation. Tightening to the exact remainder would silently drop the
// tail without ever marking the answer partial. (Both values are read at
// serialized coordination points, which keeps parallel runs deterministic.)
func (g *generator) budget(rel string) int {
	b := g.cardBudget(rel)
	if g.bt != nil {
		if r := g.bt.remainingTuples(); r < b-1 {
			b = r + 1
		}
	}
	return b
}

// stmtSelect builds the AST of SELECT rowid, <cols> FROM rel WHERE <where>
// [LIMIT n] (limit < 0 means unlimited, nil where matches all).
func (g *generator) stmtSelect(rel string, where sqlx.Expr, limit int) *sqlx.SelectStmt {
	cols := make([]string, 0, len(g.cols[rel])+1)
	cols = append(cols, sqlx.RowIDColumn)
	cols = append(cols, g.cols[rel]...)
	return &sqlx.SelectStmt{Columns: cols, Table: rel, Where: where, Limit: limit}
}

// stmtIDs builds the AST of SELECT rowid FROM rel WHERE <where>.
func stmtIDs(rel string, where sqlx.Expr) *sqlx.SelectStmt {
	return &sqlx.SelectStmt{Columns: []string{sqlx.RowIDColumn}, Table: rel, Where: where, Limit: -1}
}

// rowidRef is the pseudo-column reference generated predicates filter on.
func rowidRef() *sqlx.ColumnRef { return &sqlx.ColumnRef{Name: sqlx.RowIDColumn} }

// rowidIn builds the predicate rowid IN (ids...).
func rowidIn(ids []storage.TupleID) *sqlx.InList {
	vals := make([]storage.Value, len(ids))
	for i, id := range ids {
		vals[i] = storage.Int(int64(id))
	}
	return &sqlx.InList{Left: rowidRef(), Values: vals}
}

// fetchStmt executes one generated query and records its rows into f.
func (g *generator) fetchStmt(f *fetched, st *sqlx.SelectStmt) error {
	res, err := g.execFetch(st)
	if err != nil {
		return fmt.Errorf("core: generated query on %s: %w", st.Table, err)
	}
	f.queries++
	f.sql.Add(res.Stats)
	f.rows = append(f.rows, res.Rows...)
	return nil
}

// apply inserts the fetched rows into the output relation in order,
// skipping duplicates (paper §5.2) and stopping once budget tuples were
// inserted. It also folds the fetch's physical work into the generation
// stats and the caller-visible engine totals.
//
// The per-row loop is a cooperative checkpoint: the surrounding context is
// observed on every row (a cancellation is seen within one tuple pick), and
// the resource budget admits each insert — once any budget dimension trips,
// no further tuple is ever inserted, so the produced database is an exact
// prefix of the canonical insertion sequence. Seed rows (seed=true) are
// always admitted but still charged, guaranteeing a non-empty answer under
// any budget.
func (g *generator) apply(rel string, f *fetched, budget int, seed bool) error {
	if f == nil {
		return nil
	}
	g.stats.Queries += f.queries
	g.stats.SQL.Add(f.sql)
	g.eng.AccumulateStats(f.sql)
	if budget <= 0 {
		return nil
	}
	outRel := g.out.Relation(rel)
	inserted := 0
	for _, row := range f.rows {
		if inserted >= budget {
			break
		}
		if err := g.ctxErr(); err != nil {
			return err
		}
		id := storage.TupleID(row[0].AsInt())
		if _, exists := outRel.Get(id); exists {
			continue // duplicates are removed (paper §5.2)
		}
		if !g.bt.admitTuple(row, seed) {
			break
		}
		if err := g.out.InsertWithID(rel, id, row[1:]...); err != nil {
			return err
		}
		inserted++
	}
	g.perRel[rel] += inserted
	g.total += inserted
	return nil
}

// placeSeeds performs step 1 of Figure 5: D' starts with the tuples that
// contain the query tokens, fetched by rowid, capped by the cardinality
// constraint (NaïveQ takes the first ids; the index returns them in id
// order, the paper's "random subset"). Per-relation seed queries are
// independent reads of the original database, so with Workers > 1 they are
// fetched concurrently; inserts are applied serially in sorted relation
// order, preserving the serial result exactly.
func (g *generator) placeSeeds(seedTuples map[string][]storage.TupleID) error {
	st := g.trace.StartStep("seeds")
	tuples0, queries0 := g.total, g.stats.Queries
	rels := make([]string, 0, len(seedTuples))
	for rel := range seedTuples {
		if len(seedTuples[rel]) > 0 {
			rels = append(rels, rel)
		}
	}
	sort.Strings(rels)
	if err := g.ctxErr(); err != nil {
		return err
	}

	// Seeds use the raw cardinality budget, not the resource-budget-
	// tightened one: the tuples containing the query tokens are the
	// guaranteed core of any answer, so a budgeted query still returns
	// them (they are charged against the budget afterwards).
	if g.workers <= 1 || len(rels) < 2 {
		for _, rel := range rels {
			b := g.cardBudget(rel)
			if b <= 0 {
				continue
			}
			f, err := g.fetchSeed(rel, seedTuples[rel], b)
			if err != nil {
				return err
			}
			if err := g.apply(rel, f, b, true); err != nil {
				return err
			}
		}
		st.End(g.total-tuples0, g.stats.Queries-queries0)
		return nil
	}

	// Parallel path: snapshot optimistic budgets before any fetch (the live
	// budget can only shrink as earlier relations are applied, so each
	// fetch over-retrieves and the apply phase truncates).
	budgets := make([]int, len(rels))
	for i, rel := range rels {
		budgets[i] = g.cardBudget(rel)
	}
	results := make([]*fetched, len(rels))
	errs := make([]error, len(rels))
	parallelFor(len(rels), g.workers, func(i int) {
		if budgets[i] <= 0 {
			return
		}
		results[i], errs[i] = g.fetchSeed(rels[i], seedTuples[rels[i]], budgets[i])
	})
	for i, rel := range rels {
		if errs[i] != nil {
			return errs[i]
		}
		if err := g.apply(rel, results[i], g.cardBudget(rel), true); err != nil {
			return err
		}
	}
	st.End(g.total-tuples0, g.stats.Queries-queries0)
	return nil
}

// fetchSeed retrieves the seed tuples of one relation by rowid, capped at
// limit, in tuple-weight order when the §7 extension is active.
func (g *generator) fetchSeed(rel string, ids []storage.TupleID, limit int) (*fetched, error) {
	ids = append([]storage.TupleID(nil), ids...)
	g.opts.Weights.order(rel, ids)
	f := &fetched{}
	if err := g.fetchStmt(f, g.stmtSelect(rel, rowidIn(ids), limit)); err != nil {
		return nil, err
	}
	return f, nil
}

// executeJoins performs step 2 of Figure 5: join edges of G' execute in
// decreasing weight order; a join departing from a relation with arriving
// edges still unexecuted is postponed, so every tuple that can reach a
// relation through any path is present before the walk moves past it.
//
// With Workers > 1 the walk is batched: a batch collects, in the exact
// order the serial algorithm would pick them, frontier edges that neither
// read a relation written earlier in the batch nor write a relation another
// batch edge writes. The batch's fetch queries then run concurrently while
// the inserts are applied serially in pick order — parallelism never
// changes the produced result database.
func (g *generator) executeJoins() error {
	pending := g.rs.JoinEdgesByWeight()
	if g.opts.FIFOJoins {
		pending = g.rs.Graph.JoinEdges()
	}
	arriving := make(map[string]int)
	for _, e := range pending {
		arriving[e.To]++
	}
	executed := make(map[string]int)

	for len(pending) > 0 {
		if err := g.ctxErr(); err != nil {
			return err
		}
		if g.bt.exhausted() {
			// A budget dimension tripped: stop the best-first expansion
			// here and keep the prefix built so far.
			return nil
		}
		batch := g.nextBatch(&pending, arriving, executed)
		if len(batch) == 0 {
			// The step budget refused the next pick.
			return nil
		}
		if err := g.runBatch(batch); err != nil {
			return err
		}
	}
	return nil
}

// nextBatch removes from pending the next group of at most g.workers
// conflict-free edges, replaying the serial algorithm's pick order: the
// highest-weight edge whose source has no unexecuted arrivals wins (or, on
// a cycle, the highest-weight remaining edge). An edge that reads or writes
// a relation an earlier pick of the same batch writes closes the batch, so
// fetches within a batch observe exactly the state the serial walk would
// show them.
func (g *generator) nextBatch(pending *[]*schemagraph.JoinEdge, arriving, executed map[string]int) []*schemagraph.JoinEdge {
	max := g.workers
	if max < 1 {
		max = 1
	}
	var batch []*schemagraph.JoinEdge
	written := make(map[string]bool)
	for len(batch) < max && len(*pending) > 0 {
		pick := -1
		for i, e := range *pending {
			if g.opts.DisablePostponement || executed[e.From] >= arriving[e.From] {
				pick = i
				break
			}
		}
		if pick < 0 {
			// A cycle in G' (mutual dependence): break it at the
			// highest-weight remaining edge.
			pick = 0
		}
		e := (*pending)[pick]
		if len(batch) > 0 && (written[e.From] || written[e.To]) {
			break
		}
		// Resource-budget admission: each join edge is one step; when the
		// step budget (or the deadline) refuses it, the edge stays pending
		// and the walk ends with the prefix built so far. Admission happens
		// only after the conflict check, so a closed batch never charges a
		// step it did not execute.
		if !g.bt.admitStep() {
			break
		}
		*pending = append((*pending)[:pick], (*pending)[pick+1:]...)
		batch = append(batch, e)
		written[e.To] = true
		executed[e.To]++
	}
	return batch
}

// runBatch fetches every edge of the batch (concurrently when the pool
// allows) and applies the results serially in pick order.
func (g *generator) runBatch(batch []*schemagraph.JoinEdge) error {
	if len(batch) == 0 {
		return nil
	}
	if len(batch) == 1 {
		// Single frontier edge: any intra-join parallelism (Round-Robin
		// scans, per-tuple fetches) gets the whole pool.
		return g.runJoin(batch[0], g.workers)
	}
	inner := g.workers / len(batch)
	if inner < 1 {
		inner = 1
	}
	budgets := make([]int, len(batch))
	for i, e := range batch {
		budgets[i] = g.budget(e.To)
	}
	results := make([]*fetched, len(batch))
	errs := make([]error, len(batch))
	parallelFor(len(batch), g.workers, func(i int) {
		if budgets[i] <= 0 {
			return
		}
		results[i], errs[i] = g.fetchJoin(batch[i], budgets[i], inner)
	})
	for i, e := range batch {
		if errs[i] != nil {
			return errs[i]
		}
		// The batch's fetches ran concurrently, so a per-edge step here
		// times only the serial apply; the tuple and query counts are the
		// meaningful per-join signal. (The single-edge path below times the
		// whole fetch+apply.) The name is only rendered when a trace is
		// live, so untraced queries never pay the string concatenation.
		var st obs.StepToken
		if g.trace != nil {
			st = g.trace.StartStep(joinStepName(e))
		}
		tuples0, queries0 := g.total, g.stats.Queries
		if results[i] != nil {
			if err := g.apply(e.To, results[i], g.budget(e.To), false); err != nil {
				return err
			}
		}
		st.End(g.total-tuples0, g.stats.Queries-queries0)
		g.stats.JoinsExecuted++
	}
	return nil
}

// joinStepName renders the trace step name of one join edge.
func joinStepName(e *schemagraph.JoinEdge) string {
	return "join:" + e.From + "->" + e.To
}

// runJoin executes one join edge end-to-end: fetch under the live budget,
// then apply.
func (g *generator) runJoin(e *schemagraph.JoinEdge, workers int) error {
	var st obs.StepToken
	if g.trace != nil {
		st = g.trace.StartStep(joinStepName(e))
	}
	tuples0, queries0 := g.total, g.stats.Queries
	b := g.budget(e.To)
	if b > 0 {
		f, err := g.fetchJoin(e, b, workers)
		if err != nil {
			return err
		}
		if f != nil {
			if err := g.apply(e.To, f, b, false); err != nil {
				return err
			}
		}
	}
	st.End(g.total-tuples0, g.stats.Queries-queries0)
	g.stats.JoinsExecuted++
	return nil
}

// fetchJoin retrieves, for the directed join Ri -> Rj, candidate tuples of
// Rj joining to the tuples of Ri already in D' (paper: the issued query
// "does not contain the actual join between the two relations" — it is a
// selection on the join-attribute values present in R'i). It returns nil
// when the join has nothing to do.
func (g *generator) fetchJoin(e *schemagraph.JoinEdge, limit, workers int) (*fetched, error) {
	if err := faultinject.Fire(faultinject.SiteJoin); err != nil {
		return nil, fmt.Errorf("core: join %s->%s: %w", e.From, e.To, err)
	}
	if err := g.ctxErr(); err != nil {
		return nil, err
	}
	from := g.out.Relation(e.From)
	if from == nil || from.Len() == 0 {
		return nil, nil
	}
	values, err := from.DistinctValues(e.FromCol)
	if err != nil {
		return nil, err
	}
	if len(values) == 0 {
		return nil, nil
	}

	toN := g.isToN(e)
	useRoundRobin := g.strat == StrategyRoundRobin || (g.strat == StrategyAuto && toN)
	if useRoundRobin {
		return g.fetchRoundRobin(e, values, limit, workers)
	}
	return g.fetchNaiveQ(e, values, limit)
}

// isToN reports whether the join Ri->Rj is 1-n: the referenced column of Rj
// is not Rj's primary key, so one driving value may match many tuples.
func (g *generator) isToN(e *schemagraph.JoinEdge) bool {
	to := g.eng.Database().Relation(e.To)
	if to == nil {
		return true
	}
	return to.Schema().Key != e.ToCol
}

// fetchNaiveQ is the paper's NaïveQ: one query with an IN list over the
// driving values and a top-k cut-off (RowNum / LIMIT). Tuples already in D'
// are excluded in the query itself so the budget buys only new tuples.
func (g *generator) fetchNaiveQ(e *schemagraph.JoinEdge, values []storage.Value, limit int) (*fetched, error) {
	if len(g.opts.Weights[e.To]) > 0 {
		return g.fetchNaiveQWeighted(e, values, limit)
	}
	where := g.naiveWhere(e, values)
	f := &fetched{}
	if err := g.fetchStmt(f, g.stmtSelect(e.To, where, limit)); err != nil {
		return nil, err
	}
	return f, nil
}

// naiveWhere builds NaïveQ's predicate: toCol IN (driving values), with the
// tuples already in D' excluded so the budget buys only new tuples.
func (g *generator) naiveWhere(e *schemagraph.JoinEdge, values []storage.Value) sqlx.Expr {
	var where sqlx.Expr = &sqlx.InList{Left: &sqlx.ColumnRef{Name: e.ToCol}, Values: values}
	if excl := g.existingIDs(e.To); len(excl) > 0 {
		where = &sqlx.Logical{
			And:   true,
			Left:  where,
			Right: &sqlx.InList{Left: rowidRef(), Values: excl, Not: true},
		}
	}
	return where
}

// fetchNaiveQWeighted is NaïveQ under the §7 tuple-weights extension: a
// first query retrieves the candidate ids, which are ordered by tuple
// weight before the budget cut, and a second query fetches the winners.
// This costs one extra id-only query per join but lets importance, not
// storage order, decide which tuples survive the cardinality constraint.
func (g *generator) fetchNaiveQWeighted(e *schemagraph.JoinEdge, values []storage.Value, limit int) (*fetched, error) {
	f := &fetched{}
	if err := g.ctxErr(); err != nil {
		return nil, err
	}
	res, err := g.execFetch(stmtIDs(e.To, g.naiveWhere(e, values)))
	if err != nil {
		return nil, fmt.Errorf("core: weighted id query: %w", err)
	}
	f.queries++
	f.sql.Add(res.Stats)
	ids := append([]storage.TupleID(nil), res.RowIDs...)
	g.opts.Weights.order(e.To, ids)
	if len(ids) > limit {
		ids = ids[:limit]
	}
	if len(ids) == 0 {
		return f, nil
	}
	if err := g.fetchStmt(f, g.stmtSelect(e.To, rowidIn(ids), len(ids))); err != nil {
		return nil, err
	}
	return f, nil
}

// fetchRoundRobin is the paper's Round-Robin: one scan per driving value;
// each round retrieves at most one joining tuple per scan while the budget
// holds, so joining tuples distribute fairly across driving tuples whatever
// the true fan-out distribution. Exhausted scans close.
//
// The per-value id scans and the per-tuple row fetches are independent
// reads of the original database; with workers > 1 both run on the worker
// pool, while the round-robin consumption order — and therefore the set
// and order of retrieved tuples — is computed by a deterministic serial
// simulation.
func (g *generator) fetchRoundRobin(e *schemagraph.JoinEdge, values []storage.Value, limit, workers int) (*fetched, error) {
	outRel := g.out.Relation(e.To)

	// Open one scan (id cursor) per driving value.
	type scanRes struct {
		ids []storage.TupleID
		sql sqlx.Stats
		err error
	}
	scans := make([]scanRes, len(values))
	parallelFor(len(values), workers, func(i int) {
		// Cooperative checkpoint inside the per-value scan loop: a canceled
		// context is observed within one scan, and an expired deadline stops
		// issuing further scans (the apply phase inserts nothing once the
		// budget tripped, so skipped scans never cause answer holes).
		if err := g.ctxErr(); err != nil {
			scans[i].err = err
			return
		}
		if g.bt.checkDeadline() {
			return
		}
		res, err := g.execFetch(stmtIDs(e.To, &sqlx.Compare{
			Op:    sqlx.OpEq,
			Left:  &sqlx.ColumnRef{Name: e.ToCol},
			Right: &sqlx.Literal{Value: values[i]},
		}))
		if err != nil {
			scans[i].err = fmt.Errorf("core: round-robin scan: %w", err)
			return
		}
		ids := make([]storage.TupleID, 0, len(res.RowIDs))
		for _, id := range res.RowIDs {
			if _, exists := outRel.Get(id); !exists {
				ids = append(ids, id)
			}
		}
		g.opts.Weights.order(e.To, ids)
		scans[i].ids = ids
		scans[i].sql = res.Stats
	})
	f := &fetched{}
	cursors := make([][]storage.TupleID, 0, len(values))
	for i := range scans {
		if scans[i].err != nil {
			return nil, scans[i].err
		}
		f.queries++
		f.sql.Add(scans[i].sql)
		if len(scans[i].ids) > 0 {
			cursors = append(cursors, scans[i].ids)
		}
	}

	// Deterministic round-robin simulation: choose up to limit ids, one per
	// cursor per round. A tuple chosen by an earlier cursor this round (a
	// shared child) is skipped silently without spending budget — exactly
	// the serial algorithm's in-flight duplicate handling.
	capHint := 0
	for _, c := range cursors {
		capHint += len(c)
	}
	if capHint > limit {
		capHint = limit // limit may be math.MaxInt (Unlimited)
	}
	chosen := make([]storage.TupleID, 0, capHint)
	chosenSet := make(map[storage.TupleID]bool)
	for len(chosen) < limit && len(cursors) > 0 {
		if err := g.ctxErr(); err != nil {
			return nil, err
		}
		if g.bt.checkDeadline() {
			// Stop the simulation at a round boundary; whatever was chosen
			// so far stays a prefix of the canonical consumption order.
			break
		}
		next := cursors[:0]
		for _, cur := range cursors {
			if len(chosen) >= limit {
				break
			}
			id := cur[0]
			cur = cur[1:]
			if !chosenSet[id] {
				chosen = append(chosen, id)
				chosenSet[id] = true
			}
			if len(cur) > 0 {
				next = append(next, cur)
			}
		}
		cursors = next
	}

	// Fetch the chosen tuples, preserving consumption order.
	type rowRes struct {
		rows [][]storage.Value
		sql  sqlx.Stats
		err  error
	}
	fetchedRows := make([]rowRes, len(chosen))
	parallelFor(len(chosen), workers, func(i int) {
		// Per-tuple checkpoint: cancellation is observed within one row
		// fetch. (The budget is deliberately not consulted here — the
		// chosen list must be fetched contiguously so the applied rows
		// remain an exact prefix; the apply loop enforces the cut.)
		if err := g.ctxErr(); err != nil {
			fetchedRows[i].err = err
			return
		}
		res, err := g.execFetch(g.stmtSelect(e.To, &sqlx.Compare{
			Op:    sqlx.OpEq,
			Left:  rowidRef(),
			Right: &sqlx.Literal{Value: storage.Int(int64(chosen[i]))},
		}, 1))
		if err != nil {
			fetchedRows[i].err = err
			return
		}
		fetchedRows[i].rows = res.Rows
		fetchedRows[i].sql = res.Stats
	})
	for i := range fetchedRows {
		if fetchedRows[i].err != nil {
			return nil, fetchedRows[i].err
		}
		f.queries++
		f.sql.Add(fetchedRows[i].sql)
		f.rows = append(f.rows, fetchedRows[i].rows...)
	}
	return f, nil
}

// existingIDs returns the ids already present in the output relation as
// literal values for a NOT IN predicate, or nil when empty.
func (g *generator) existingIDs(rel string) []storage.Value {
	r := g.out.Relation(rel)
	if r == nil || r.Len() == 0 {
		return nil
	}
	vals := make([]storage.Value, 0, r.Len())
	r.Scan(func(t storage.Tuple) bool {
		vals = append(vals, storage.Int(int64(t.ID)))
		return true
	})
	return vals
}

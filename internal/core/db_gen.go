package core

import (
	"fmt"
	"sort"
	"strings"

	"precis/internal/schemagraph"
	"precis/internal/sqlx"
	"precis/internal/storage"
)

// Strategy selects how tuples joining a populated relation are retrieved
// from the original database (paper §5.2).
type Strategy uint8

const (
	// StrategyAuto applies Round-Robin only to 1-n joins, "wherever
	// required", and NaïveQ everywhere else — the practical configuration
	// the paper recommends.
	StrategyAuto Strategy = iota
	// StrategyNaive always issues a single top-k query per join (Oracle
	// RowNum style). On 1-n joins it risks starving some driving tuples.
	StrategyNaive
	// StrategyRoundRobin always opens one scan per driving tuple and takes
	// one joining tuple from each scan per round.
	StrategyRoundRobin
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyNaive:
		return "naiveq"
	case StrategyRoundRobin:
		return "roundrobin"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// GenStats reports the physical work of one result-database generation; its
// units match the paper's cost model (queries issued, index probes, tuple
// reads).
type GenStats struct {
	Queries           int
	SQL               sqlx.Stats
	JoinsExecuted     int
	TuplesPerRelation map[string]int
	TotalTuples       int
}

// ResultDatabase is the précis: a new database D' that is a sub-database of
// the original, together with the result schema it instantiates and the
// generation statistics.
type ResultDatabase struct {
	DB     *storage.Database
	Schema *ResultSchema
	Stats  GenStats
}

// DisplayColumns returns the columns of rel meant for presentation: the
// projected attributes of the result schema, excluding join plumbing that
// was fetched only to execute joins (§5.2: "attributes required for joins
// ... will not show in the final answer").
func (rd *ResultDatabase) DisplayColumns(rel string) []string {
	return rd.Schema.Projections(rel)
}

// DBGenOptions expose the design choices of the Result Database Generator
// for ablation studies; the zero value is the paper's algorithm.
type DBGenOptions struct {
	// FIFOJoins executes join edges in result-schema declaration order
	// instead of decreasing weight order (ablates "relations most related
	// to the query are populated first").
	FIFOJoins bool
	// DisablePostponement executes a join as soon as its source is
	// populated even if arrivals at the source are still pending (ablates
	// the in-degree bookkeeping; under tight budgets, tuples reached only
	// through late-arriving paths lose their downstream joins).
	DisablePostponement bool
	// Weights enables the paper's §7 extension: per-tuple importance.
	// When the cardinality budget forces a choice, heavier tuples are
	// retrieved first (seeds, NaïveQ results, and Round-Robin scans all
	// honour the ordering).
	Weights TupleWeights
}

// generator carries the state of one Figure 5 run.
type generator struct {
	eng    *sqlx.Engine
	rs     *ResultSchema
	card   CardinalityConstraint
	strat  Strategy
	opts   DBGenOptions
	out    *storage.Database
	perRel map[string]int
	total  int
	stats  GenStats
	// columns fetched per relation (display + plumbing), in original order.
	cols map[string][]string
}

// GenerateDatabase runs the Result Database Algorithm (paper Figure 5).
// eng wraps the original database; rs is the result schema G'; seedTuples
// maps each seed relation to the tuple ids the inverted index matched; c is
// the cardinality constraint and strat the retrieval strategy.
func GenerateDatabase(eng *sqlx.Engine, rs *ResultSchema, seedTuples map[string][]storage.TupleID, c CardinalityConstraint, strat Strategy) (*ResultDatabase, error) {
	return GenerateDatabaseOpts(eng, rs, seedTuples, c, strat, DBGenOptions{})
}

// GenerateDatabaseOpts is GenerateDatabase with explicit ablation options.
func GenerateDatabaseOpts(eng *sqlx.Engine, rs *ResultSchema, seedTuples map[string][]storage.TupleID, c CardinalityConstraint, strat Strategy, opts DBGenOptions) (*ResultDatabase, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil cardinality constraint")
	}
	for rel := range seedTuples {
		if rs.Graph.Relation(rel) == nil {
			return nil, fmt.Errorf("core: seed tuples for %s, which is not in the result schema", rel)
		}
	}
	g := &generator{
		eng:    eng,
		rs:     rs,
		card:   c,
		strat:  strat,
		opts:   opts,
		out:    storage.NewDatabase("precis"),
		perRel: make(map[string]int),
		cols:   make(map[string][]string),
	}
	g.stats.TuplesPerRelation = g.perRel
	if err := g.buildResultSchemas(); err != nil {
		return nil, err
	}
	baseline := eng.TotalStats()
	if err := g.placeSeeds(seedTuples); err != nil {
		return nil, err
	}
	if err := g.executeJoins(); err != nil {
		return nil, err
	}
	after := eng.TotalStats()
	g.stats.SQL = sqlx.Stats{
		IndexLookups: after.IndexLookups - baseline.IndexLookups,
		TupleReads:   after.TupleReads - baseline.TupleReads,
		Scanned:      after.Scanned - baseline.Scanned,
	}
	g.stats.TotalTuples = g.total
	return &ResultDatabase{DB: g.out, Schema: g.rs, Stats: g.stats}, nil
}

// buildResultSchemas creates in the output database, for every relation of
// G', a relation whose columns are the projected attributes plus the join
// columns of incident G' edges, in the original column order.
func (g *generator) buildResultSchemas() error {
	orig := g.eng.Database()
	for _, name := range g.rs.Relations() {
		rel := orig.Relation(name)
		if rel == nil {
			return fmt.Errorf("core: result schema names %s, which is missing from the database", name)
		}
		need := make(map[string]bool)
		for _, a := range g.rs.Projections(name) {
			need[a] = true
		}
		for _, e := range g.rs.Graph.JoinEdges() {
			if e.From == name {
				need[e.FromCol] = true
			}
			if e.To == name {
				need[e.ToCol] = true
			}
		}
		var cols []string
		for _, c := range rel.Schema().Columns {
			if need[c.Name] {
				cols = append(cols, c.Name)
			}
		}
		if len(cols) == 0 {
			// A relation can enter G' purely as a junction on a path (CAST
			// in the running example): fall back to its key or first column
			// so it remains representable.
			if k := rel.Schema().Key; k != "" {
				cols = []string{k}
			} else {
				cols = []string{rel.Schema().Columns[0].Name}
			}
		}
		sub, err := rel.Schema().Project(cols)
		if err != nil {
			return err
		}
		if _, err := g.out.CreateRelation(sub); err != nil {
			return err
		}
		g.cols[name] = cols
	}
	// Foreign keys of the original whose endpoints survive carry over, so
	// the précis is a database with its own constraints (paper §1).
	for _, fk := range orig.ForeignKeys() {
		from := g.out.Relation(fk.FromRelation)
		to := g.out.Relation(fk.ToRelation)
		if from == nil || to == nil {
			continue
		}
		if !from.Schema().HasColumn(fk.FromColumn) || !to.Schema().HasColumn(fk.ToColumn) {
			continue
		}
		if err := g.out.AddForeignKey(fk); err != nil {
			return err
		}
	}
	return nil
}

// budget returns the remaining allowance for rel.
func (g *generator) budget(rel string) int {
	return g.card.Budget(rel, g.perRel, g.total)
}

// selectSQL builds SELECT rowid, <cols> FROM rel WHERE <where> [LIMIT n].
// Identifiers are quoted as needed so user schemas may use any column name.
func (g *generator) selectSQL(rel, where string, limit int) string {
	quoted := make([]string, len(g.cols[rel]))
	for i, c := range g.cols[rel] {
		quoted[i] = sqlx.Ident(c)
	}
	var b strings.Builder
	b.WriteString("SELECT rowid, ")
	b.WriteString(strings.Join(quoted, ", "))
	b.WriteString(" FROM ")
	b.WriteString(sqlx.Ident(rel))
	if where != "" {
		b.WriteString(" WHERE ")
		b.WriteString(where)
	}
	if limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", limit)
	}
	return b.String()
}

// runSelect executes a generated query and inserts the resulting tuples
// into the output relation, skipping tuples already present. It returns the
// number of tuples inserted.
func (g *generator) runSelect(rel, query string) (int, error) {
	res, err := g.eng.Exec(query)
	if err != nil {
		return 0, fmt.Errorf("core: generated query %q: %w", query, err)
	}
	g.stats.Queries++
	outRel := g.out.Relation(rel)
	inserted := 0
	for _, row := range res.Rows {
		id := storage.TupleID(row[0].AsInt())
		if _, exists := outRel.Get(id); exists {
			continue // duplicates are removed (paper §5.2)
		}
		if err := g.out.InsertWithID(rel, id, row[1:]...); err != nil {
			return inserted, err
		}
		inserted++
	}
	g.perRel[rel] += inserted
	g.total += inserted
	return inserted, nil
}

// placeSeeds performs step 1 of Figure 5: D' starts with the tuples that
// contain the query tokens, fetched by rowid, capped by the cardinality
// constraint (NaïveQ takes the first ids; the index returns them in id
// order, the paper's "random subset").
func (g *generator) placeSeeds(seedTuples map[string][]storage.TupleID) error {
	rels := make([]string, 0, len(seedTuples))
	for rel := range seedTuples {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		ids := append([]storage.TupleID(nil), seedTuples[rel]...)
		if len(ids) == 0 {
			continue
		}
		b := g.budget(rel)
		if b <= 0 {
			continue
		}
		g.opts.Weights.order(rel, ids)
		var sb strings.Builder
		sb.WriteString("rowid IN (")
		for i, id := range ids {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%d", id)
		}
		sb.WriteString(")")
		if _, err := g.runSelect(rel, g.selectSQL(rel, sb.String(), b)); err != nil {
			return err
		}
	}
	return nil
}

// executeJoins performs step 2 of Figure 5: join edges of G' execute in
// decreasing weight order; a join departing from a relation with arriving
// edges still unexecuted is postponed, so every tuple that can reach a
// relation through any path is present before the walk moves past it.
func (g *generator) executeJoins() error {
	pending := g.rs.JoinEdgesByWeight()
	if g.opts.FIFOJoins {
		pending = g.rs.Graph.JoinEdges()
	}
	arriving := make(map[string]int)
	for _, e := range pending {
		arriving[e.To]++
	}
	executed := make(map[string]int)

	for len(pending) > 0 {
		// Pick the highest-weight edge whose source has no unexecuted
		// arrivals; the list is already weight-ordered.
		pick := -1
		for i, e := range pending {
			if g.opts.DisablePostponement || executed[e.From] >= arriving[e.From] {
				pick = i
				break
			}
		}
		if pick < 0 {
			// A cycle in G' (mutual dependence): break it at the
			// highest-weight remaining edge.
			pick = 0
		}
		e := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)
		if err := g.executeJoin(e); err != nil {
			return err
		}
		executed[e.To]++
		g.stats.JoinsExecuted++
	}
	return nil
}

// executeJoin retrieves, for the directed join Ri -> Rj, tuples of Rj
// joining to the tuples of Ri already in D' (paper: the issued query
// "does not contain the actual join between the two relations" — it is a
// selection on the join-attribute values present in R'i).
func (g *generator) executeJoin(e *schemagraph.JoinEdge) error {
	b := g.budget(e.To)
	if b <= 0 {
		return nil
	}
	from := g.out.Relation(e.From)
	if from == nil || from.Len() == 0 {
		return nil
	}
	values, err := from.DistinctValues(e.FromCol)
	if err != nil {
		return err
	}
	if len(values) == 0 {
		return nil
	}

	toN := g.isToN(e)
	useRoundRobin := g.strat == StrategyRoundRobin || (g.strat == StrategyAuto && toN)
	if useRoundRobin {
		return g.roundRobin(e, values, b)
	}
	return g.naiveQ(e, values, b)
}

// isToN reports whether the join Ri->Rj is 1-n: the referenced column of Rj
// is not Rj's primary key, so one driving value may match many tuples.
func (g *generator) isToN(e *schemagraph.JoinEdge) bool {
	to := g.eng.Database().Relation(e.To)
	if to == nil {
		return true
	}
	return to.Schema().Key != e.ToCol
}

// naiveQ is the paper's NaïveQ: one query with an IN list over the driving
// values and a top-k cut-off (RowNum / LIMIT). Tuples already in D' are
// excluded in the query itself so the budget buys only new tuples.
func (g *generator) naiveQ(e *schemagraph.JoinEdge, values []storage.Value, budget int) error {
	if len(g.opts.Weights[e.To]) > 0 {
		return g.naiveQWeighted(e, values, budget)
	}
	var sb strings.Builder
	sb.WriteString(sqlx.Ident(e.ToCol))
	sb.WriteString(" IN (")
	for i, v := range values {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.SQL())
	}
	sb.WriteString(")")
	if excl := g.existingIDs(e.To); excl != "" {
		sb.WriteString(" AND rowid NOT IN (")
		sb.WriteString(excl)
		sb.WriteString(")")
	}
	_, err := g.runSelect(e.To, g.selectSQL(e.To, sb.String(), budget))
	return err
}

// naiveQWeighted is NaïveQ under the §7 tuple-weights extension: a first
// query retrieves the candidate ids, which are ordered by tuple weight
// before the budget cut, and a second query fetches the winners. This costs
// one extra id-only query per join but lets importance, not storage order,
// decide which tuples survive the cardinality constraint.
func (g *generator) naiveQWeighted(e *schemagraph.JoinEdge, values []storage.Value, budget int) error {
	var sb strings.Builder
	sb.WriteString("SELECT rowid FROM ")
	sb.WriteString(sqlx.Ident(e.To))
	sb.WriteString(" WHERE ")
	sb.WriteString(sqlx.Ident(e.ToCol))
	sb.WriteString(" IN (")
	for i, v := range values {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.SQL())
	}
	sb.WriteString(")")
	if excl := g.existingIDs(e.To); excl != "" {
		sb.WriteString(" AND rowid NOT IN (")
		sb.WriteString(excl)
		sb.WriteString(")")
	}
	res, err := g.eng.Exec(sb.String())
	if err != nil {
		return fmt.Errorf("core: weighted id query: %w", err)
	}
	g.stats.Queries++
	ids := append([]storage.TupleID(nil), res.RowIDs...)
	g.opts.Weights.order(e.To, ids)
	if len(ids) > budget {
		ids = ids[:budget]
	}
	if len(ids) == 0 {
		return nil
	}
	var fetch strings.Builder
	fetch.WriteString("rowid IN (")
	for i, id := range ids {
		if i > 0 {
			fetch.WriteString(", ")
		}
		fmt.Fprintf(&fetch, "%d", id)
	}
	fetch.WriteString(")")
	_, err = g.runSelect(e.To, g.selectSQL(e.To, fetch.String(), len(ids)))
	return err
}

// roundRobin is the paper's Round-Robin: one scan per driving value; each
// round retrieves at most one joining tuple per scan while the budget
// holds, so joining tuples distribute fairly across driving tuples whatever
// the true fan-out distribution. Exhausted scans close.
func (g *generator) roundRobin(e *schemagraph.JoinEdge, values []storage.Value, budget int) error {
	outRel := g.out.Relation(e.To)
	// Open one scan (id cursor) per driving value.
	cursors := make([][]storage.TupleID, 0, len(values))
	for _, v := range values {
		res, err := g.eng.Exec("SELECT rowid FROM " + sqlx.Ident(e.To) + " WHERE " + sqlx.Ident(e.ToCol) + " = " + v.SQL())
		if err != nil {
			return fmt.Errorf("core: round-robin scan: %w", err)
		}
		g.stats.Queries++
		ids := make([]storage.TupleID, 0, len(res.Rows))
		for _, id := range res.RowIDs {
			if _, exists := outRel.Get(id); !exists {
				ids = append(ids, id)
			}
		}
		g.opts.Weights.order(e.To, ids)
		if len(ids) > 0 {
			cursors = append(cursors, ids)
		}
	}
	taken := 0
	for taken < budget && len(cursors) > 0 {
		next := cursors[:0]
		for _, cur := range cursors {
			if taken >= budget {
				break
			}
			id := cur[0]
			cur = cur[1:]
			// A tuple may have been inserted by an earlier cursor this
			// round (shared child): skip silently without spending budget.
			if _, exists := outRel.Get(id); exists {
				if len(cur) > 0 {
					next = append(next, cur)
				}
				continue
			}
			query := g.selectSQL(e.To, fmt.Sprintf("rowid = %d", id), 1)
			n, err := g.runSelect(e.To, query)
			if err != nil {
				return err
			}
			taken += n
			if len(cur) > 0 {
				next = append(next, cur)
			}
		}
		cursors = next
	}
	return nil
}

// existingIDs renders the ids already present in the output relation as a
// comma-separated list, or "" when empty.
func (g *generator) existingIDs(rel string) string {
	r := g.out.Relation(rel)
	if r == nil || r.Len() == 0 {
		return ""
	}
	var sb strings.Builder
	first := true
	r.Scan(func(t storage.Tuple) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", t.ID)
		return true
	})
	return sb.String()
}

package core

// ParallelFor panic-isolation tests: a panic on a worker goroutine must
// reach the caller as a *PanicError carrying the worker's stack (first
// panic wins, the pool drains cleanly), while the serial path propagates
// the raw panic value exactly like a plain loop.

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestParallelForRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		ParallelFor(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestParallelForWorkerPanicBecomesPanicError(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
		if pe.Value != "boom-42" {
			t.Fatalf("panic value = %v, want boom-42", pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
			t.Fatalf("worker stack not captured: %q", pe.Stack)
		}
		if !strings.Contains(pe.Error(), "boom-42") || !strings.Contains(pe.Error(), "worker stack") {
			t.Fatalf("Error() rendering incomplete: %s", pe.Error())
		}
	}()
	ParallelFor(100, 4, func(i int) {
		if i == 42 {
			panic("boom-42")
		}
	})
}

// TestParallelForFirstPanicWins: many workers panic; exactly one PanicError
// surfaces and the pool still quiesces (no goroutine leak, no deadlock —
// the test completing under -race is the assertion).
func TestParallelForFirstPanicWins(t *testing.T) {
	var ran atomic.Int64
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
		if s, ok := pe.Value.(string); !ok || !strings.HasPrefix(s, "boom-") {
			t.Fatalf("unexpected panic value: %v", pe.Value)
		}
		// Poisoning stops chunk handout: with every call panicking, far
		// fewer than n indices should have run (each worker dies on its
		// first chunk).
		if ran.Load() >= 10000 {
			t.Fatalf("poisoned pool kept pulling work: %d calls", ran.Load())
		}
	}()
	ParallelFor(10000, 8, func(i int) {
		ran.Add(1)
		panic("boom-" + string(rune('a'+i%26)))
	})
}

// TestParallelForSerialPanicUnwrapped: the serial path must behave exactly
// like a plain loop — the panic value arrives unwrapped.
func TestParallelForSerialPanicUnwrapped(t *testing.T) {
	defer func() {
		if r := recover(); r != "plain" {
			t.Fatalf("serial panic = %v (%T), want the raw value", r, r)
		}
	}()
	ParallelFor(3, 1, func(i int) { panic("plain") })
}

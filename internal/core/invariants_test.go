package core

import (
	"math"
	"math/rand"
	"testing"

	"precis/internal/dataset"
	"precis/internal/invidx"
	"precis/internal/schemagraph"
	"precis/internal/sqlx"
	"precis/internal/storage"
)

// These tests check the DESIGN.md invariants over randomly generated
// graphs and databases rather than hand-picked fixtures.

// randomGraphAndSeeds draws a random weighted graph and a random non-empty
// seed set.
func randomGraphAndSeeds(t *testing.T, r *rand.Rand) (*schemagraph.Graph, []string) {
	t.Helper()
	cfg := dataset.GraphConfig{
		Relations:   2 + r.Intn(8),
		AttrsPerRel: 1 + r.Intn(6),
		ExtraJoins:  r.Intn(6),
		Seed:        r.Int63(),
	}
	g, err := dataset.RandomGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rels := g.Relations()
	n := 1 + r.Intn(2)
	seen := map[string]bool{}
	var seeds []string
	for len(seeds) < n {
		s := rels[r.Intn(len(rels))]
		if !seen[s] {
			seen[s] = true
			seeds = append(seeds, s)
		}
	}
	return g, seeds
}

// TestInvariantResultSchemaIsSubgraph: every node and edge of G' exists in
// G with the same weight, and every projection path respects the weight
// bound.
func TestInvariantResultSchemaIsSubgraph(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		g, seeds := randomGraphAndSeeds(t, r)
		w0 := 0.1 + r.Float64()*0.8
		rs, err := GenerateSchema(g, seeds, MinPathWeight(w0))
		if err != nil {
			t.Fatal(err)
		}
		for _, rel := range rs.Relations() {
			orig := g.Relation(rel)
			if orig == nil {
				t.Fatalf("trial %d: G' relation %s not in G", trial, rel)
			}
			sub := rs.Graph.Relation(rel)
			for _, p := range sub.Projections() {
				op := orig.Projection(p.Attribute)
				if op == nil {
					t.Fatalf("trial %d: projection %s not in G", trial, p.Key())
				}
				if op.Weight != p.Weight {
					t.Fatalf("trial %d: projection %s weight %v != %v", trial, p.Key(), p.Weight, op.Weight)
				}
			}
			for _, e := range sub.Out() {
				found := false
				for _, oe := range orig.Out() {
					if oe.To == e.To && oe.FromCol == e.FromCol && oe.ToCol == e.ToCol && oe.Weight == e.Weight {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: edge %s not in G", trial, e.Key())
				}
			}
		}
		// Every accepted path respects the bound and is ordered.
		prev := math.Inf(1)
		for _, p := range rs.Paths {
			if p.Weight() < w0-1e-12 {
				t.Fatalf("trial %d: path %s weight %v below bound %v", trial, p, p.Weight(), w0)
			}
			if p.Weight() > prev+1e-12 {
				t.Fatalf("trial %d: paths out of order", trial)
			}
			prev = p.Weight()
		}
	}
}

// TestInvariantMonotoneRelaxation: lowering the weight bound never removes
// relations or projections from the result schema.
func TestInvariantMonotoneRelaxation(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 100; trial++ {
		g, seeds := randomGraphAndSeeds(t, r)
		hi := 0.3 + r.Float64()*0.6
		lo := hi * (0.3 + r.Float64()*0.7)
		strict, err := GenerateSchema(g, seeds, MinPathWeight(hi))
		if err != nil {
			t.Fatal(err)
		}
		loose, err := GenerateSchema(g, seeds, MinPathWeight(lo))
		if err != nil {
			t.Fatal(err)
		}
		for _, rel := range strict.Relations() {
			if loose.Graph.Relation(rel) == nil {
				t.Fatalf("trial %d: relation %s lost relaxing %v -> %v", trial, rel, hi, lo)
			}
			for _, a := range strict.Projections(rel) {
				found := false
				for _, b := range loose.Projections(rel) {
					if a == b {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: projection %s.%s lost relaxing %v -> %v", trial, rel, a, hi, lo)
				}
			}
		}
	}
}

// TestInvariantSubDatabase: for random chain databases, random seeds and
// random cardinality budgets, the generated result is always a valid
// sub-database and respects the budget exactly.
func TestInvariantSubDatabase(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		cfg := dataset.ChainConfig{
			Relations:   1 + r.Intn(5),
			RowsPerRel:  5 + r.Intn(40),
			Fanout:      1 + r.Intn(4),
			Seed:        r.Int63(),
			UniformRows: r.Intn(2) == 0,
		}
		db, g, err := dataset.Chain(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seedRel := db.RelationNames()[r.Intn(db.NumRelations())]
		var all []storage.TupleID
		db.Relation(seedRel).Scan(func(tu storage.Tuple) bool {
			all = append(all, tu.ID)
			return true
		})
		nSeeds := 1 + r.Intn(5)
		if nSeeds > len(all) {
			nSeeds = len(all)
		}
		seedIDs := all[:nSeeds]

		rs, err := GenerateSchema(g, []string{seedRel}, MinPathWeight(0.0001))
		if err != nil {
			t.Fatal(err)
		}
		perRel := 1 + r.Intn(20)
		var card CardinalityConstraint = MaxTuplesPerRelation(perRel)
		total := -1
		if r.Intn(2) == 0 {
			total = 5 + r.Intn(50)
			card = AllCardinality(card, MaxTotalTuples(total))
		}
		strat := []Strategy{StrategyAuto, StrategyNaive, StrategyRoundRobin}[r.Intn(3)]

		rd, err := GenerateDatabase(sqlx.NewEngine(db), rs, map[string][]storage.TupleID{seedRel: seedIDs}, card, strat)
		if err != nil {
			t.Fatal(err)
		}
		if err := storage.VerifySubDatabase(db, rd.DB); err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, cfg, err)
		}
		for _, rel := range rd.DB.RelationNames() {
			if n := rd.DB.Relation(rel).Len(); n > perRel {
				t.Fatalf("trial %d: %s has %d > %d tuples", trial, rel, n, perRel)
			}
		}
		if total >= 0 && rd.DB.TotalTuples() > total {
			t.Fatalf("trial %d: total %d > %d", trial, rd.DB.TotalTuples(), total)
		}
		// Seeds are present up to the budget.
		wantSeeds := nSeeds
		if wantSeeds > perRel {
			wantSeeds = perRel
		}
		if total >= 0 && wantSeeds > total {
			wantSeeds = total
		}
		if got := rd.DB.Relation(seedRel).Len(); got < wantSeeds {
			t.Fatalf("trial %d: seed relation has %d tuples, want >= %d", trial, got, wantSeeds)
		}
	}
}

// TestInvariantStrategiesSameTuplesUnlimited: with no cardinality bound,
// NaïveQ and Round-Robin retrieve exactly the same tuples (the strategies
// differ only in which tuples win a constrained budget).
func TestInvariantStrategiesSameTuplesUnlimited(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		cfg := dataset.ChainConfig{
			Relations:   2 + r.Intn(3),
			RowsPerRel:  5 + r.Intn(20),
			Fanout:      1 + r.Intn(3),
			Seed:        r.Int63(),
			UniformRows: false,
		}
		db, g, err := dataset.Chain(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := GenerateSchema(g, []string{"R0"}, MinPathWeight(0.0001))
		if err != nil {
			t.Fatal(err)
		}
		ix := invidx.New(db)
		occ := ix.Lookup("tokR0")
		seeds := map[string][]storage.TupleID{"R0": occ[0].TupleIDs[:3]}
		a, err := GenerateDatabase(sqlx.NewEngine(db), rs, seeds, Unlimited(), StrategyNaive)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GenerateDatabase(sqlx.NewEngine(db), rs, seeds, Unlimited(), StrategyRoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		for _, rel := range a.DB.RelationNames() {
			ra, rb := a.DB.Relation(rel), b.DB.Relation(rel)
			if ra.Len() != rb.Len() {
				t.Fatalf("trial %d: %s naive %d != roundrobin %d tuples", trial, rel, ra.Len(), rb.Len())
			}
			ra.Scan(func(tu storage.Tuple) bool {
				if _, ok := rb.Get(tu.ID); !ok {
					t.Fatalf("trial %d: %s tuple %d only in naive result", trial, rel, tu.ID)
				}
				return true
			})
		}
	}
}

// TestInvariantGenerationDeterministic: the same inputs produce identical
// result databases (tuple sets and insertion order).
func TestInvariantGenerationDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		cfg := dataset.ChainConfig{
			Relations: 3, RowsPerRel: 20, Fanout: 3, Seed: r.Int63(), UniformRows: false,
		}
		db, g, err := dataset.Chain(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := GenerateSchema(g, []string{"R0"}, MinPathWeight(0.0001))
		if err != nil {
			t.Fatal(err)
		}
		ix := invidx.New(db)
		seeds := map[string][]storage.TupleID{"R0": ix.Lookup("tokR0")[0].TupleIDs[:4]}
		run := func() []storage.TupleID {
			rd, err := GenerateDatabase(sqlx.NewEngine(db), rs, seeds, MaxTuplesPerRelation(7), StrategyAuto)
			if err != nil {
				t.Fatal(err)
			}
			var ids []storage.TupleID
			for _, rel := range rd.DB.RelationNames() {
				rd.DB.Relation(rel).Scan(func(tu storage.Tuple) bool {
					ids = append(ids, tu.ID)
					return true
				})
			}
			return ids
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d vs %d tuples", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: position %d: %d vs %d", trial, i, a[i], b[i])
			}
		}
	}
}

package core

import "precis/internal/parallel"

// The pool implementation lives in internal/parallel so the inverted-index
// builder can share it; core re-exports the API its callers already use.

// MaxWorkers caps any worker pool the engine spawns; beyond this the
// coordination overhead dominates on the read-mostly workloads the
// generator runs.
const MaxWorkers = parallel.MaxWorkers

// NormalizeWorkers resolves a requested pool size: 0 means one worker per
// logical CPU (runtime.GOMAXPROCS), negatives mean serial, and everything
// is capped at MaxWorkers.
func NormalizeWorkers(n int) int { return parallel.NormalizeWorkers(n) }

// PanicError wraps a panic that escaped a ParallelFor worker, carrying the
// panicking goroutine's stack. ParallelFor re-raises it on the calling
// goroutine, and the engine boundary converts it into ErrInternal — so one
// poisoned tuple can never kill the process.
type PanicError = parallel.PanicError

// ParallelFor runs fn(i) for every i in [0, n) on at most workers
// goroutines, returning when all calls finished; see parallel.For for the
// chunking and panic-isolation contract.
func ParallelFor(n, workers int, fn func(i int)) { parallel.For(n, workers, fn) }

// parallelFor is the package-internal alias used by the generator.
func parallelFor(n, workers int, fn func(i int)) { parallel.For(n, workers, fn) }

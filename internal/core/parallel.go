package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxWorkers caps any worker pool the engine spawns; beyond this the
// coordination overhead dominates on the read-mostly workloads the
// generator runs.
const MaxWorkers = 64

// NormalizeWorkers resolves a requested pool size: 0 means one worker per
// logical CPU (runtime.GOMAXPROCS), negatives mean serial, and everything
// is capped at MaxWorkers.
func NormalizeWorkers(n int) int {
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return 1
	}
	if n > MaxWorkers {
		return MaxWorkers
	}
	return n
}

// ParallelFor runs fn(i) for every i in [0, n) on at most workers
// goroutines, returning when all calls finished. With workers <= 1 (or a
// single item) it degenerates to a plain loop on the calling goroutine, so
// serial paths pay no synchronization cost. Work is handed out through an
// atomic counter in chunks (so tiny per-item tasks don't pay one
// synchronization per index), which makes the mapping of index to goroutine
// arbitrary — fn must be safe to call concurrently and should only write
// state owned by its index (e.g. slot i of a results slice).
func ParallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Chunked handout: aim for a few chunks per worker so the pool stays
	// balanced under skewed task costs without an atomic op per index.
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// parallelFor is the package-internal alias used by the generator.
func parallelFor(n, workers int, fn func(i int)) { ParallelFor(n, workers, fn) }

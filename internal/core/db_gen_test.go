package core

import (
	"reflect"
	"sort"
	"testing"

	"precis/internal/dataset"
	"precis/internal/invidx"
	"precis/internal/schemagraph"
	"precis/internal/sqlx"
	"precis/internal/storage"
)

// exampleSetup resolves Q = {"Woody Allen"} on the example movies database
// and returns everything GenerateDatabase needs.
func exampleSetup(t *testing.T, w float64) (*sqlx.Engine, *ResultSchema, map[string][]storage.TupleID) {
	t.Helper()
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	occs := ix.Lookup("Woody Allen")
	seeds := map[string][]storage.TupleID{}
	var seedRels []string
	for _, o := range occs {
		seeds[o.Relation] = append(seeds[o.Relation], o.TupleIDs...)
		seedRels = append(seedRels, o.Relation)
	}
	sort.Strings(seedRels)
	rs, err := GenerateSchema(g, seedRels, MinPathWeight(w))
	if err != nil {
		t.Fatal(err)
	}
	rs.CopyAnnotations(g)
	return sqlx.NewEngine(db), rs, seeds
}

// TestPaperRunningExampleData reproduces the §5.2 example: Q = {"Woody
// Allen"}, weight >= 0.9, up to three tuples per relation.
func TestPaperRunningExampleData(t *testing.T) {
	eng, rs, seeds := exampleSetup(t, 0.9)
	rd, err := GenerateDatabase(eng, rs, seeds, MaxTuplesPerRelation(3), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	// The précis is a sub-database of the original (query model §3.3).
	if err := storage.VerifySubDatabase(eng.Database(), rd.DB); err != nil {
		t.Fatalf("sub-database check: %v", err)
	}
	// Every relation respects the cardinality constraint.
	for _, rel := range rd.DB.RelationNames() {
		if n := rd.DB.Relation(rel).Len(); n > 3 {
			t.Errorf("%s has %d tuples > 3", rel, n)
		}
	}
	// The seeds are present: Woody Allen the director and the actor.
	dir := rd.DB.Relation("DIRECTOR")
	if dir.Len() != 1 {
		t.Fatalf("DIRECTOR tuples = %d", dir.Len())
	}
	dt := dir.Tuples()[0]
	di := dir.Schema().ColumnIndex("dname")
	if dt.Values[di].AsString() != "Woody Allen" {
		t.Errorf("director = %v", dt.Values)
	}
	if rd.DB.Relation("ACTOR").Len() != 1 {
		t.Errorf("ACTOR tuples = %d", rd.DB.Relation("ACTOR").Len())
	}
	// MOVIE is populated (3 tuples, budget-capped) and GENRE follows.
	if rd.DB.Relation("MOVIE").Len() != 3 {
		t.Errorf("MOVIE tuples = %d", rd.DB.Relation("MOVIE").Len())
	}
	if rd.DB.Relation("GENRE").Len() == 0 {
		t.Error("GENRE empty")
	}
	// Display columns match Figure 4, not the plumbing.
	if got := rd.DisplayColumns("MOVIE"); !reflect.DeepEqual(sorted(got), []string{"title", "year"}) {
		t.Errorf("display cols = %v", got)
	}
	// Plumbing columns (mid) were fetched for the joins but are not
	// display columns.
	if !rd.DB.Relation("MOVIE").Schema().HasColumn("mid") {
		t.Error("join plumbing missing from result relation")
	}
	if rd.Stats.Queries == 0 || rd.Stats.TotalTuples == 0 {
		t.Errorf("stats = %+v", rd.Stats)
	}
}

// TestGenerousBudgetFetchesAllRelatedMovies checks Figure 6's content: with
// enough budget, the director's précis lists Match Point (2005), Melinda and
// Melinda (2004), Anything Else (2003) and the acting credits.
func TestGenerousBudgetFetchesAllRelatedMovies(t *testing.T) {
	eng, rs, seeds := exampleSetup(t, 0.9)
	rd, err := GenerateDatabase(eng, rs, seeds, MaxTuplesPerRelation(100), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	movies := rd.DB.Relation("MOVIE")
	ti := movies.Schema().ColumnIndex("title")
	var titles []string
	movies.Scan(func(tu storage.Tuple) bool {
		titles = append(titles, tu.Values[ti].AsString())
		return true
	})
	sort.Strings(titles)
	want := []string{"Anything Else", "Hollywood Ending", "Match Point",
		"Melinda and Melinda", "The Curse of the Jade Scorpion"}
	if !reflect.DeepEqual(titles, want) {
		t.Errorf("titles = %v, want %v", titles, want)
	}
	// All five woody movies' genres arrive (movies 1,2,3 have 2 each).
	if rd.DB.Relation("GENRE").Len() != 6 {
		t.Errorf("GENRE tuples = %d, want 6", rd.DB.Relation("GENRE").Len())
	}
	// Sofia Coppola's movie must NOT be present: it joins to nothing
	// related to Woody Allen.
	for _, title := range titles {
		if title == "Lost in Translation" {
			t.Error("unrelated movie leaked into the précis")
		}
	}
}

func TestTotalCardinalityConstraint(t *testing.T) {
	eng, rs, seeds := exampleSetup(t, 0.9)
	rd, err := GenerateDatabase(eng, rs, seeds, MaxTotalTuples(4), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if rd.DB.TotalTuples() > 4 {
		t.Errorf("total tuples = %d > 4", rd.DB.TotalTuples())
	}
	// Weight-ordered population: the seeds (placed first) must be present.
	if rd.DB.Relation("DIRECTOR").Len() != 1 || rd.DB.Relation("ACTOR").Len() != 1 {
		t.Error("seeds missing under tight total budget")
	}
}

func TestZeroBudget(t *testing.T) {
	eng, rs, seeds := exampleSetup(t, 0.9)
	rd, err := GenerateDatabase(eng, rs, seeds, MaxTotalTuples(0), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if rd.DB.TotalTuples() != 0 {
		t.Errorf("total tuples = %d, want 0", rd.DB.TotalTuples())
	}
}

func TestStrategiesAgreeOnToOneJoins(t *testing.T) {
	// On a pure chain of n-1 joins driven forward (R1 -> R0 is to-1), both
	// strategies retrieve the same tuples.
	db, g, err := dataset.Chain(dataset.ChainConfig{Relations: 2, RowsPerRel: 30, Fanout: 2, Seed: 5, UniformRows: true})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := GenerateSchema(g, []string{"R1"}, MinPathWeight(0.5))
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	occ := ix.Lookup("tokR1")
	seeds := map[string][]storage.TupleID{"R1": occ[0].TupleIDs[:5]}

	naive, err := GenerateDatabase(sqlx.NewEngine(db), rs, seeds, MaxTuplesPerRelation(50), StrategyNaive)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := GenerateDatabase(sqlx.NewEngine(db), rs, seeds, MaxTuplesPerRelation(50), StrategyRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"R0", "R1"} {
		a := naive.DB.Relation(rel).Tuples()
		b := rr.DB.Relation(rel).Tuples()
		ids := func(ts []storage.Tuple) []storage.TupleID {
			out := make([]storage.TupleID, len(ts))
			for i, tu := range ts {
				out[i] = tu.ID
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		if !reflect.DeepEqual(ids(a), ids(b)) {
			t.Errorf("%s: naive %v != roundrobin %v", rel, ids(a), ids(b))
		}
	}
	// Round-Robin issues strictly more queries (a scan per driving value
	// plus a fetch per tuple).
	if rr.Stats.Queries <= naive.Stats.Queries {
		t.Errorf("queries: roundrobin %d <= naive %d", rr.Stats.Queries, naive.Stats.Queries)
	}
}

// TestRoundRobinFairness is the property that motivates Round-Robin (§5.2):
// on a 1-n join under a budget smaller than the total fan-out, every driving
// tuple receives at least one joining tuple, whereas NaïveQ may starve
// drivers.
func TestRoundRobinFairness(t *testing.T) {
	// R0 has 5 rows; R1 has 10 children per parent (deterministic fanout).
	db, g, err := dataset.Chain(dataset.ChainConfig{Relations: 2, RowsPerRel: 5, Fanout: 10, Seed: 1, UniformRows: false})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := GenerateSchema(g, []string{"R0"}, MinPathWeight(0.5))
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	occ := ix.Lookup("tokR0")
	seeds := map[string][]storage.TupleID{"R0": occ[0].TupleIDs}

	budget := AllCardinality(MaxTuplesPerRelation(10))
	rr, err := GenerateDatabase(sqlx.NewEngine(db), rs, seeds, budget, StrategyRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := GenerateDatabase(sqlx.NewEngine(db), rs, seeds, budget, StrategyNaive)
	if err != nil {
		t.Fatal(err)
	}

	parentsCovered := func(rd *ResultDatabase) int {
		r1 := rd.DB.Relation("R1")
		pi := r1.Schema().ColumnIndex("parent")
		set := map[int64]bool{}
		r1.Scan(func(tu storage.Tuple) bool {
			set[tu.Values[pi].AsInt()] = true
			return true
		})
		return len(set)
	}
	if got := parentsCovered(rr); got != 5 {
		t.Errorf("round-robin covered %d/5 parents", got)
	}
	// NaïveQ takes the first 10 children in id order: children of parents 1
	// and 2 only.
	if got := parentsCovered(naive); got >= 5 {
		t.Errorf("naive covered %d parents; expected starvation (< 5)", got)
	}
	// Both respect the budget exactly (enough children exist).
	if rr.DB.Relation("R1").Len() != 10 || naive.DB.Relation("R1").Len() != 10 {
		t.Errorf("R1 sizes: rr=%d naive=%d", rr.DB.Relation("R1").Len(), naive.DB.Relation("R1").Len())
	}
}

// TestInDegreePostponement builds the scenario where postponement matters:
// two seeds A and B both reach M, and M -> G has a higher weight than
// B -> M. Executing strictly by weight would fetch G's tuples before B's
// movies arrive in M, losing their children.
func TestInDegreePostponement(t *testing.T) {
	db := storage.NewDatabase("d")
	mk := func(name string, cols ...storage.Column) {
		db.MustCreateRelation(storage.MustSchema(name, "id", cols...))
	}
	idc := storage.Column{Name: "id", Type: storage.TypeInt}
	lbl := storage.Column{Name: "label", Type: storage.TypeString}
	mk("A", idc, lbl, storage.Column{Name: "mid", Type: storage.TypeInt})
	mk("B", idc, lbl, storage.Column{Name: "mid", Type: storage.TypeInt})
	mk("M", idc, lbl)
	mk("G", idc, lbl, storage.Column{Name: "mid", Type: storage.TypeInt})
	for _, fk := range []storage.ForeignKey{
		{FromRelation: "A", FromColumn: "mid", ToRelation: "M", ToColumn: "id"},
		{FromRelation: "B", FromColumn: "mid", ToRelation: "M", ToColumn: "id"},
		{FromRelation: "G", FromColumn: "mid", ToRelation: "M", ToColumn: "id"},
	} {
		if err := db.AddForeignKey(fk); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateJoinIndexes(); err != nil {
		t.Fatal(err)
	}
	ins := func(rel string, vals ...storage.Value) storage.TupleID {
		id, err := db.Insert(rel, vals...)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	// M1 reached from A, M2 reached from B; each M has one G child.
	ins("M", storage.Int(1), storage.String("m1"))
	ins("M", storage.Int(2), storage.String("m2"))
	aid := ins("A", storage.Int(1), storage.String("seedA"), storage.Int(1))
	bid := ins("B", storage.Int(1), storage.String("seedB"), storage.Int(2))
	ins("G", storage.Int(1), storage.String("g-of-m1"), storage.Int(1))
	ins("G", storage.Int(2), storage.String("g-of-m2"), storage.Int(2))

	g := schemagraph.FromDatabase(db)
	// Weights: A->M = 1.0, M->G = 0.95, B->M = 0.9. Without postponement,
	// M->G (0.95) would run before B->M (0.9).
	set := func(from, to string, w float64) {
		for _, e := range g.Relation(from).Out() {
			if e.To == to {
				e.Weight = w
			}
		}
	}
	set("A", "M", 1.0)
	set("M", "G", 0.95)
	set("B", "M", 0.9)
	set("M", "A", 0.0)
	set("M", "B", 0.0)
	set("G", "M", 0.0)

	rs, err := GenerateSchema(g, []string{"A", "B"}, MinPathWeight(0.85))
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[string][]storage.TupleID{"A": {aid}, "B": {bid}}
	rd, err := GenerateDatabase(sqlx.NewEngine(db), rs, seeds, Unlimited(), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if rd.DB.Relation("M").Len() != 2 {
		t.Fatalf("M tuples = %d, want 2", rd.DB.Relation("M").Len())
	}
	// The point of postponement: both G children arrive, including m2's.
	if rd.DB.Relation("G").Len() != 2 {
		t.Errorf("G tuples = %d, want 2 (postponement failed)", rd.DB.Relation("G").Len())
	}
}

func TestGenerateDatabaseErrors(t *testing.T) {
	eng, rs, seeds := exampleSetup(t, 0.9)
	if _, err := GenerateDatabase(eng, rs, seeds, nil, StrategyAuto); err == nil {
		t.Error("nil cardinality accepted")
	}
	bad := map[string][]storage.TupleID{"THEATRE": {1}}
	if _, err := GenerateDatabase(eng, rs, bad, Unlimited(), StrategyAuto); err == nil {
		t.Error("seed outside result schema accepted")
	}
}

func TestResultDatabaseKeepsForeignKeys(t *testing.T) {
	eng, rs, seeds := exampleSetup(t, 0.9)
	rd, err := GenerateDatabase(eng, rs, seeds, MaxTuplesPerRelation(100), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(rd.DB.ForeignKeys()) == 0 {
		t.Error("result database lost its foreign keys")
	}
	// With a generous budget, referential integrity holds inside the
	// result for every carried-over FK that points along executed joins.
	jc := storage.CheckJoinConsistency(eng.Database(), rd.DB)
	for _, c := range jc {
		// GENRE->MOVIE, CAST->MOVIE, CAST->ACTOR, MOVIE->DIRECTOR: every
		// referencing tuple was fetched by joining from the referenced
		// side or vice versa. CAST->ACTOR may dangle: only Woody's casts
		// were fetched... those reference actor 1 which is present.
		if c.Satisfied < c.Referencing {
			t.Logf("FK %v: %d/%d satisfied", c.ForeignKey, c.Satisfied, c.Referencing)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyAuto.String() != "auto" || StrategyNaive.String() != "naiveq" || StrategyRoundRobin.String() != "roundrobin" {
		t.Error("strategy names")
	}
}

// TestPostponementAblation re-runs the postponement scenario with the
// in-degree bookkeeping disabled: the children of late-arriving tuples are
// lost, demonstrating why the paper postpones departing joins.
func TestPostponementAblation(t *testing.T) {
	db := storage.NewDatabase("d")
	mk := func(name string, cols ...storage.Column) {
		db.MustCreateRelation(storage.MustSchema(name, "id", cols...))
	}
	idc := storage.Column{Name: "id", Type: storage.TypeInt}
	lbl := storage.Column{Name: "label", Type: storage.TypeString}
	mk("A", idc, lbl, storage.Column{Name: "mid", Type: storage.TypeInt})
	mk("B", idc, lbl, storage.Column{Name: "mid", Type: storage.TypeInt})
	mk("M", idc, lbl)
	mk("G", idc, lbl, storage.Column{Name: "mid", Type: storage.TypeInt})
	for _, fk := range []storage.ForeignKey{
		{FromRelation: "A", FromColumn: "mid", ToRelation: "M", ToColumn: "id"},
		{FromRelation: "B", FromColumn: "mid", ToRelation: "M", ToColumn: "id"},
		{FromRelation: "G", FromColumn: "mid", ToRelation: "M", ToColumn: "id"},
	} {
		if err := db.AddForeignKey(fk); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateJoinIndexes(); err != nil {
		t.Fatal(err)
	}
	ins := func(rel string, vals ...storage.Value) storage.TupleID {
		id, err := db.Insert(rel, vals...)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	ins("M", storage.Int(1), storage.String("m1"))
	ins("M", storage.Int(2), storage.String("m2"))
	aid := ins("A", storage.Int(1), storage.String("seedA"), storage.Int(1))
	bid := ins("B", storage.Int(1), storage.String("seedB"), storage.Int(2))
	ins("G", storage.Int(1), storage.String("g-of-m1"), storage.Int(1))
	ins("G", storage.Int(2), storage.String("g-of-m2"), storage.Int(2))

	g := schemagraph.FromDatabase(db)
	set := func(from, to string, w float64) {
		for _, e := range g.Relation(from).Out() {
			if e.To == to {
				e.Weight = w
			}
		}
	}
	set("A", "M", 1.0)
	set("M", "G", 0.95)
	set("B", "M", 0.9)
	set("M", "A", 0.0)
	set("M", "B", 0.0)
	set("G", "M", 0.0)

	rs, err := GenerateSchema(g, []string{"A", "B"}, MinPathWeight(0.85))
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[string][]storage.TupleID{"A": {aid}, "B": {bid}}
	rd, err := GenerateDatabaseOpts(sqlx.NewEngine(db), rs, seeds, Unlimited(), StrategyAuto,
		DBGenOptions{DisablePostponement: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without postponement, M->G (weight 0.95) runs before B->M (0.9): m2's
	// child is missed.
	if rd.DB.Relation("G").Len() != 1 {
		t.Errorf("ablated G tuples = %d, want 1 (missing child expected)", rd.DB.Relation("G").Len())
	}
}

// TestFIFOJoinAblation: under a tight total budget, weight-ordered join
// execution fills high-weight relations first; FIFO order can spend the
// budget on low-weight relations instead.
func TestFIFOJoinAblation(t *testing.T) {
	eng, rs, seeds := exampleSetup(t, 0.9)
	weighted, err := GenerateDatabase(eng, rs, seeds, MaxTotalTuples(6), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := GenerateDatabaseOpts(eng, rs, seeds, MaxTotalTuples(6), StrategyAuto,
		DBGenOptions{FIFOJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both respect the budget; the distributions may differ but the
	// weight-ordered run must fill the heaviest join's target (MOVIE via
	// the weight-1 edges) at least as much as FIFO does.
	if weighted.DB.TotalTuples() > 6 || fifo.DB.TotalTuples() > 6 {
		t.Errorf("budget violated: weighted=%d fifo=%d",
			weighted.DB.TotalTuples(), fifo.DB.TotalTuples())
	}
	if weighted.DB.Relation("MOVIE").Len() < fifo.DB.Relation("MOVIE").Len() {
		t.Errorf("weight order filled MOVIE less (%d) than FIFO (%d)",
			weighted.DB.Relation("MOVIE").Len(), fifo.DB.Relation("MOVIE").Len())
	}
}

// TestTupleWeightsExtension exercises the §7 future-work feature: with a
// budget of 2 movies, per-tuple weights decide which movies survive.
func TestTupleWeightsExtension(t *testing.T) {
	eng, rs, seeds := exampleSetup(t, 0.9)
	// Weight the two oldest Woody Allen movies highest.
	weights := TupleWeights{}
	movies := eng.Database().Relation("MOVIE")
	ti := movies.Schema().ColumnIndex("title")
	yi := movies.Schema().ColumnIndex("year")
	movies.Scan(func(tu storage.Tuple) bool {
		// Older year -> higher weight.
		weights.Set("MOVIE", tu.ID, float64(2100-tu.Values[yi].AsInt()))
		return true
	})
	rd, err := GenerateDatabaseOpts(eng, rs, seeds, MaxTuplesPerRelation(2), StrategyNaive,
		DBGenOptions{Weights: weights})
	if err != nil {
		t.Fatal(err)
	}
	var titles []string
	rd.DB.Relation("MOVIE").Scan(func(tu storage.Tuple) bool {
		titles = append(titles, tu.Values[rd.DB.Relation("MOVIE").Schema().ColumnIndex("title")].AsString())
		return true
	})
	sort.Strings(titles)
	// The two oldest: The Curse of the Jade Scorpion (2001), Hollywood
	// Ending (2002). (Joins execute ACTOR->CAST first; cast movies are
	// 3, 4, 5, of which the 2001 and 2002 ones win the budget.)
	want := []string{"Hollywood Ending", "The Curse of the Jade Scorpion"}
	if !reflect.DeepEqual(titles, want) {
		t.Errorf("weighted selection = %v, want %v", titles, want)
	}
	_ = ti
}

// TestTupleWeightsSeedSelection: seed tuples also honour weights under a
// tight budget.
func TestTupleWeightsSeedSelection(t *testing.T) {
	db, g, err := dataset.Chain(dataset.ChainConfig{Relations: 1, RowsPerRel: 10, Fanout: 1, Seed: 1, UniformRows: true})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := GenerateSchema(g, []string{"R0"}, MinPathWeight(0.5))
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	occ := ix.Lookup("tokR0")
	weights := TupleWeights{}
	last := occ[0].TupleIDs[len(occ[0].TupleIDs)-1]
	weights.Set("R0", last, 10)
	seeds := map[string][]storage.TupleID{"R0": occ[0].TupleIDs}
	rd, err := GenerateDatabaseOpts(sqlx.NewEngine(db), rs, seeds, MaxTuplesPerRelation(1), StrategyNaive,
		DBGenOptions{Weights: weights})
	if err != nil {
		t.Fatal(err)
	}
	got := rd.DB.Relation("R0").Tuples()
	if len(got) != 1 || got[0].ID != last {
		t.Errorf("seed selection = %v, want [%d]", got, last)
	}
}

// TestTupleWeightsRoundRobin: each Round-Robin scan yields its heaviest
// tuples first.
func TestTupleWeightsRoundRobin(t *testing.T) {
	db, g, err := dataset.Chain(dataset.ChainConfig{Relations: 2, RowsPerRel: 3, Fanout: 4, Seed: 1, UniformRows: false})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := GenerateSchema(g, []string{"R0"}, MinPathWeight(0.5))
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	occ := ix.Lookup("tokR0")
	// For every parent, weight its highest-id child most.
	weights := TupleWeights{}
	db.Relation("R1").Scan(func(tu storage.Tuple) bool {
		weights.Set("R1", tu.ID, float64(tu.ID))
		return true
	})
	seeds := map[string][]storage.TupleID{"R0": occ[0].TupleIDs}
	rd, err := GenerateDatabaseOpts(sqlx.NewEngine(db), rs, seeds, MaxTuplesPerRelation(3), StrategyRoundRobin,
		DBGenOptions{Weights: weights})
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin takes one per parent; with weights, each parent's
	// heaviest (= highest id) child is taken.
	r1 := rd.DB.Relation("R1")
	if r1.Len() != 3 {
		t.Fatalf("R1 tuples = %d", r1.Len())
	}
	pi := r1.Schema().ColumnIndex("parent")
	opi := db.Relation("R1").Schema().ColumnIndex("parent")
	best := map[int64]storage.TupleID{}
	db.Relation("R1").Scan(func(tu storage.Tuple) bool {
		p := tu.Values[opi].AsInt()
		if tu.ID > best[p] {
			best[p] = tu.ID
		}
		return true
	})
	r1.Scan(func(tu storage.Tuple) bool {
		p := tu.Values[pi].AsInt()
		if tu.ID != best[p] {
			t.Errorf("parent %d: got tuple %d, want heaviest %d", p, tu.ID, best[p])
		}
		return true
	})
}

package core

import (
	"reflect"
	"sort"
	"testing"

	"precis/internal/dataset"
	"precis/internal/schemagraph"
)

func paperGraph(t *testing.T) *schemagraph.Graph {
	t.Helper()
	_, g, err := dataset.ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sorted(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	return out
}

// TestPaperRunningExampleSchema reproduces Figure 4: the result schema for
// Q = {"Woody Allen"} (seeds DIRECTOR and ACTOR) under the degree constraint
// "projections with weight >= 0.9".
func TestPaperRunningExampleSchema(t *testing.T) {
	g := paperGraph(t)
	rs, err := GenerateSchema(g, []string{"DIRECTOR", "ACTOR"}, MinPathWeight(0.9))
	if err != nil {
		t.Fatal(err)
	}
	wantRels := []string{"ACTOR", "CAST", "DIRECTOR", "GENRE", "MOVIE"}
	if got := sorted(rs.Relations()); !reflect.DeepEqual(got, wantRels) {
		t.Fatalf("relations = %v, want %v", got, wantRels)
	}
	wantProj := map[string][]string{
		"DIRECTOR": {"dname", "blocation", "bdate"},
		"MOVIE":    {"title", "year"},
		"GENRE":    {"genre"},
		"ACTOR":    {"aname"},
		"CAST":     nil,
	}
	for rel, want := range wantProj {
		got := rs.Projections(rel)
		if !reflect.DeepEqual(sorted(got), sorted(want)) {
			t.Errorf("projections of %s = %v, want %v", rel, got, want)
		}
	}
	// Figure 4 remark: MOVIE has in-degree 2 (reached from both DIRECTOR
	// and ACTOR).
	if d := rs.SeedInDegree("MOVIE"); d != 2 {
		t.Errorf("seed in-degree of MOVIE = %d, want 2", d)
	}
	if d := rs.SeedInDegree("DIRECTOR"); d != 1 {
		t.Errorf("seed in-degree of DIRECTOR = %d, want 1", d)
	}
	// The join edges of G': DIRECTOR->MOVIE, ACTOR->CAST, CAST->MOVIE,
	// MOVIE->GENRE.
	var keys []string
	for _, e := range rs.Graph.JoinEdges() {
		keys = append(keys, e.From+"->"+e.To)
	}
	wantEdges := []string{"ACTOR->CAST", "CAST->MOVIE", "DIRECTOR->MOVIE", "MOVIE->GENRE"}
	if !reflect.DeepEqual(sorted(keys), wantEdges) {
		t.Errorf("join edges = %v, want %v", sorted(keys), wantEdges)
	}
	// Join in-degrees drive the data generator's postponement.
	if d := rs.JoinInDegree("MOVIE"); d != 2 {
		t.Errorf("join in-degree of MOVIE = %d", d)
	}
	// Low-weight regions are excluded at 0.9: PLAY, THEATRE.
	for _, rel := range []string{"PLAY", "THEATRE"} {
		if rs.Graph.Relation(rel) != nil {
			t.Errorf("%s should not appear at w >= 0.9", rel)
		}
	}
}

// TestSchemaLowerThreshold: relaxing the threshold expands the explored
// region of the database (§3.1 progressive exploration).
func TestSchemaLowerThreshold(t *testing.T) {
	g := paperGraph(t)
	strict, err := GenerateSchema(g, []string{"DIRECTOR"}, MinPathWeight(0.9))
	if err != nil {
		t.Fatal(err)
	}
	loose, err := GenerateSchema(g, []string{"DIRECTOR"}, MinPathWeight(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(loose.Relations()) <= len(strict.Relations()) {
		t.Errorf("loose %v should strictly contain strict %v", loose.Relations(), strict.Relations())
	}
	// PLAY (via MOVIE->PLAY 0.7, projection date 0.6 => 0.42 < 0.5; but
	// PLAY.date at 0.7*0.6=0.42 fails; THEATRE.name at 0.7*1*1=0.7 passes).
	if loose.Graph.Relation("THEATRE") == nil {
		t.Error("THEATRE should appear at w >= 0.5")
	}
	// Monotonicity: every relation and attribute of the strict answer stays.
	for _, rel := range strict.Relations() {
		if loose.Graph.Relation(rel) == nil {
			t.Errorf("relation %s lost when relaxing", rel)
		}
		for _, a := range strict.Projections(rel) {
			found := false
			for _, b := range loose.Projections(rel) {
				if a == b {
					found = true
				}
			}
			if !found {
				t.Errorf("projection %s.%s lost when relaxing", rel, a)
			}
		}
	}
}

// TestSchemaMonotoneInWeight checks the prefix property across a sweep of
// thresholds on the paper graph: results only grow as w0 decreases.
func TestSchemaMonotoneInWeight(t *testing.T) {
	g := paperGraph(t)
	prevAttrs := -1
	for _, w := range []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3} {
		rs, err := GenerateSchema(g, []string{"GENRE"}, MinPathWeight(w))
		if err != nil {
			t.Fatal(err)
		}
		n := rs.NumAttributes()
		if prevAttrs >= 0 && n < prevAttrs {
			t.Errorf("attributes shrank from %d to %d at w=%v", prevAttrs, n, w)
		}
		prevAttrs = n
	}
}

func TestSchemaTopProjections(t *testing.T) {
	g := paperGraph(t)
	rs, err := GenerateSchema(g, []string{"DIRECTOR"}, TopProjections(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Paths) != 3 {
		t.Fatalf("accepted paths = %d, want 3", len(rs.Paths))
	}
	// The three heaviest projections from DIRECTOR are dname (1.0),
	// MOVIE.title via DIRECTOR->MOVIE (1.0), and one of the 0.95s.
	got := map[string]bool{}
	for _, p := range rs.Paths {
		got[p.Proj.Key()] = true
	}
	if !got["DIRECTOR.dname"] || !got["MOVIE.title"] {
		t.Errorf("top-3 = %v", got)
	}
}

func TestSchemaMaxAttributesCountsDistinct(t *testing.T) {
	g := paperGraph(t)
	// From both seeds, MOVIE.title is reachable; with MaxAttributes the
	// shared attribute consumes one slot even if two paths project it.
	rs, err := GenerateSchema(g, []string{"DIRECTOR", "ACTOR"}, MaxAttributes(4))
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumAttributes() > 4 {
		t.Errorf("attributes = %d > 4", rs.NumAttributes())
	}
}

func TestSchemaPathsOrdered(t *testing.T) {
	g := paperGraph(t)
	rs, err := GenerateSchema(g, []string{"DIRECTOR", "ACTOR"}, MinPathWeight(0.5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rs.Paths); i++ {
		if rs.Paths[i].Weight() > rs.Paths[i-1].Weight()+1e-12 {
			t.Fatalf("paths out of order at %d: %v after %v",
				i, rs.Paths[i].Weight(), rs.Paths[i-1].Weight())
		}
	}
}

func TestSchemaSingleSeedNoJoins(t *testing.T) {
	// A graph with one isolated relation: result is just its projections.
	g := schemagraph.New()
	g.AddRelation("R")
	if _, err := g.AddProjection("R", "a", 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddProjection("R", "b", 0.4); err != nil {
		t.Fatal(err)
	}
	rs, err := GenerateSchema(g, []string{"R"}, MinPathWeight(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Projections("R"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("projections = %v", got)
	}
}

func TestSchemaErrors(t *testing.T) {
	g := paperGraph(t)
	if _, err := GenerateSchema(g, nil, MinPathWeight(0.5)); err == nil {
		t.Error("no seeds accepted")
	}
	if _, err := GenerateSchema(g, []string{"NOPE"}, MinPathWeight(0.5)); err == nil {
		t.Error("unknown seed accepted")
	}
	if _, err := GenerateSchema(g, []string{"MOVIE", "MOVIE"}, MinPathWeight(0.5)); err == nil {
		t.Error("duplicate seed accepted")
	}
	if _, err := GenerateSchema(g, []string{"MOVIE"}, nil); err == nil {
		t.Error("nil constraint accepted")
	}
}

func TestSchemaZeroDegreeStillHasSeeds(t *testing.T) {
	g := paperGraph(t)
	rs, err := GenerateSchema(g, []string{"MOVIE"}, TopProjections(0))
	if err != nil {
		t.Fatal(err)
	}
	// No projections survive, but the seed relation must be present so the
	// matching tuples can still be placed.
	if rs.Graph.Relation("MOVIE") == nil {
		t.Error("seed relation missing from empty-degree schema")
	}
	if rs.NumAttributes() != 0 {
		t.Errorf("attributes = %d, want 0", rs.NumAttributes())
	}
}

func TestCopyAnnotations(t *testing.T) {
	g := paperGraph(t)
	rs, err := GenerateSchema(g, []string{"DIRECTOR"}, MinPathWeight(0.9))
	if err != nil {
		t.Fatal(err)
	}
	rs.CopyAnnotations(g)
	if rs.Graph.Relation("MOVIE").Heading != "title" {
		t.Error("heading not copied")
	}
	if rs.Graph.Relation("DIRECTOR").Heading != "dname" {
		t.Error("seed heading not copied")
	}
}

// TestSchemaPruningAblation: with pruning disabled the result is identical
// (pruning is a pure optimization) for weight-monotone constraints.
func TestSchemaPruningAblation(t *testing.T) {
	g := paperGraph(t)
	for _, w := range []float64{0.9, 0.7, 0.5} {
		a, err := GenerateSchema(g, []string{"DIRECTOR", "ACTOR"}, MinPathWeight(w))
		if err != nil {
			t.Fatal(err)
		}
		b, err := GenerateSchemaOpts(g, []string{"DIRECTOR", "ACTOR"}, MinPathWeight(w),
			SchemaGeneratorOptions{DisablePruning: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sorted(a.Relations()), sorted(b.Relations())) {
			t.Fatalf("w=%v: relations differ: %v vs %v", w, a.Relations(), b.Relations())
		}
		for _, rel := range a.Relations() {
			if !reflect.DeepEqual(sorted(a.Projections(rel)), sorted(b.Projections(rel))) {
				t.Fatalf("w=%v rel=%s: projections differ", w, rel)
			}
		}
	}
}

func TestSeedDistance(t *testing.T) {
	g := paperGraph(t)
	rs, err := GenerateSchema(g, []string{"DIRECTOR", "ACTOR"}, MinPathWeight(0.9))
	if err != nil {
		t.Fatal(err)
	}
	dist := rs.SeedDistance()
	want := map[string]int{
		"DIRECTOR": 0, "ACTOR": 0, // seeds
		"CAST":  1, // ACTOR -> CAST
		"MOVIE": 1, // DIRECTOR -> MOVIE
		"GENRE": 2, // ... -> MOVIE -> GENRE
	}
	for rel, d := range want {
		if dist[rel] != d {
			t.Errorf("dist[%s] = %d, want %d", rel, dist[rel], d)
		}
	}
	// Join ordering: among the weight-1.0 edges, DIRECTOR->MOVIE (source
	// distance 0) precedes CAST->MOVIE (source distance 1).
	edges := rs.JoinEdgesByWeight()
	posOf := func(from, to string) int {
		for i, e := range edges {
			if e.From == from && e.To == to {
				return i
			}
		}
		return -1
	}
	if posOf("DIRECTOR", "MOVIE") > posOf("CAST", "MOVIE") {
		t.Errorf("seed-distance tie-break not applied: %v", edges)
	}
}

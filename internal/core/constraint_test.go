package core

import (
	"math"
	"strings"
	"testing"

	"precis/internal/schemagraph"
)

// projPath builds a projection path of the given weight for constraint tests.
func projPath(rel, attr string, w float64) *schemagraph.Path {
	g := schemagraph.New()
	g.AddRelation(rel)
	pr, err := g.AddProjection(rel, attr, w)
	if err != nil {
		panic(err)
	}
	return schemagraph.NewPath(rel).ExtendProjection(pr)
}

// joinPath builds a join path of n hops, each of weight w.
func joinPath(n int, w float64) *schemagraph.Path {
	g := schemagraph.New()
	names := make([]string, n+1)
	for i := range names {
		names[i] = string(rune('A' + i))
		g.AddRelation(names[i])
	}
	p := schemagraph.NewPath(names[0])
	for i := 0; i < n; i++ {
		e, err := g.AddJoin(names[i], names[i+1], "k", "k", w)
		if err != nil {
			panic(err)
		}
		p = p.ExtendJoin(e)
	}
	return p
}

func TestTopProjections(t *testing.T) {
	c := TopProjections(2)
	var sel []*schemagraph.Path
	p1 := projPath("A", "x", 1.0)
	if !c.Accept(sel, p1) {
		t.Error("first projection rejected")
	}
	sel = append(sel, p1)
	p2 := projPath("A", "y", 0.9)
	if !c.Accept(sel, p2) {
		t.Error("second projection rejected")
	}
	sel = append(sel, p2)
	if c.Accept(sel, projPath("A", "z", 0.8)) {
		t.Error("third projection accepted with r=2")
	}
	// Join paths need room for at least one more projection.
	if c.Accept(sel, joinPath(1, 1.0)) {
		t.Error("join path accepted when no projection slot remains")
	}
	if !c.Accept(sel[:1], joinPath(1, 1.0)) {
		t.Error("join path rejected although a slot remains")
	}
}

func TestMaxAttributes(t *testing.T) {
	c := MaxAttributes(2)
	sel := []*schemagraph.Path{projPath("A", "x", 1.0)}
	// Same attribute again (from another seed) does not consume a new slot.
	if !c.Accept(sel, projPath("A", "x", 0.9)) {
		t.Error("duplicate attribute counted twice")
	}
	if !c.Accept(sel, projPath("A", "y", 0.9)) {
		t.Error("second attribute rejected")
	}
	sel = append(sel, projPath("A", "y", 0.9))
	if c.Accept(sel, projPath("B", "z", 0.8)) {
		t.Error("third attribute accepted with n=2")
	}
	if !c.Accept(sel, projPath("A", "y", 0.5)) {
		t.Error("repeat attribute rejected at capacity")
	}
}

func TestMinPathWeight(t *testing.T) {
	c := MinPathWeight(0.9)
	if !c.Accept(nil, projPath("A", "x", 0.9)) {
		t.Error("boundary weight rejected")
	}
	if c.Accept(nil, projPath("A", "x", 0.899)) {
		t.Error("sub-threshold weight accepted")
	}
	if !c.Accept(nil, joinPath(2, 0.95)) {
		t.Error("heavy join path rejected")
	}
	if c.Accept(nil, joinPath(2, 0.5)) {
		t.Error("light join path accepted")
	}
}

func TestMaxPathLength(t *testing.T) {
	c := MaxPathLength(2)
	if !c.Accept(nil, projPath("A", "x", 1.0)) { // length 1
		t.Error("length-1 projection rejected")
	}
	long := joinPath(2, 1.0) // join length 2; a projection would make 3
	if c.Accept(nil, long) {
		t.Error("join path with no room for projection accepted")
	}
	ok := joinPath(1, 1.0)
	if !c.Accept(nil, ok) {
		t.Error("join path with room rejected")
	}
}

func TestAllDegree(t *testing.T) {
	c := AllDegree(MinPathWeight(0.5), TopProjections(1))
	if !c.Accept(nil, projPath("A", "x", 0.9)) {
		t.Error("conjunction rejected valid candidate")
	}
	sel := []*schemagraph.Path{projPath("A", "x", 0.9)}
	if c.Accept(sel, projPath("A", "y", 0.9)) {
		t.Error("conjunction ignored TopProjections")
	}
	if c.Accept(nil, projPath("A", "x", 0.4)) {
		t.Error("conjunction ignored MinPathWeight")
	}
	if !strings.Contains(c.String(), "and") {
		t.Errorf("String = %q", c.String())
	}
}

func TestCardinalityBudgets(t *testing.T) {
	per := MaxTuplesPerRelation(5)
	counts := map[string]int{"R": 3}
	if b := per.Budget("R", counts, 100); b != 2 {
		t.Errorf("per-relation budget = %d", b)
	}
	if b := per.Budget("S", counts, 100); b != 5 {
		t.Errorf("fresh relation budget = %d", b)
	}
	counts["R"] = 9
	if b := per.Budget("R", counts, 100); b != 0 {
		t.Errorf("over-full budget = %d", b)
	}

	tot := MaxTotalTuples(10)
	if b := tot.Budget("R", counts, 7); b != 3 {
		t.Errorf("total budget = %d", b)
	}
	if b := tot.Budget("R", counts, 12); b != 0 {
		t.Errorf("exceeded total budget = %d", b)
	}

	if b := Unlimited().Budget("R", counts, 1<<40); b != math.MaxInt {
		t.Errorf("unlimited budget = %d", b)
	}

	both := AllCardinality(MaxTuplesPerRelation(5), MaxTotalTuples(6))
	counts = map[string]int{"R": 2}
	if b := both.Budget("R", counts, 4); b != 2 {
		t.Errorf("combined budget = %d (min of 3 and 2)", b)
	}
	if got := both.String(); !strings.Contains(got, "and") {
		t.Errorf("String = %q", got)
	}
}

func TestConstraintStrings(t *testing.T) {
	for _, s := range []string{
		TopProjections(3).String(),
		MaxAttributes(4).String(),
		MinPathWeight(0.9).String(),
		MaxPathLength(2).String(),
		MaxTuplesPerRelation(3).String(),
		MaxTotalTuples(9).String(),
		Unlimited().String(),
	} {
		if s == "" {
			t.Error("empty constraint string")
		}
	}
}

package core

import (
	"sync/atomic"
	"time"

	"precis/internal/storage"
)

// TruncationReason says which resource budget stopped a result-database
// generation early. The empty string means the answer is complete.
type TruncationReason string

const (
	// TruncateNone: the generation ran to completion.
	TruncateNone TruncationReason = ""
	// TruncateDeadline: the wall-clock deadline passed mid-generation.
	TruncateDeadline TruncationReason = "deadline"
	// TruncateTupleBudget: the materialized-tuple budget ran out.
	TruncateTupleBudget TruncationReason = "tuple-budget"
	// TruncateStepBudget: the join-step budget ran out.
	TruncateStepBudget TruncationReason = "step-budget"
	// TruncateByteBudget: the approximate result-byte budget ran out.
	TruncateByteBudget TruncationReason = "byte-budget"
)

// Budget bounds the physical resources one result-database generation may
// consume. Unlike the paper's degree and cardinality constraints — which
// shape what the ideal answer looks like — a Budget is a runtime guard: when
// it runs out the generator stops the best-first expansion at the next
// deterministic checkpoint and returns the prefix answer built so far,
// marked with a TruncationReason, instead of an error. Seed tuples (the
// tuples that contain the query tokens) are always materialized in full, so
// a budgeted answer is never empty when the query matched anything.
//
// The zero value imposes no bounds.
type Budget struct {
	// Deadline is the wall-clock instant after which generation stops.
	// Zero means no deadline.
	Deadline time.Time
	// MaxTuples bounds the number of tuples materialized into the result
	// database, across all relations. 0 means unlimited. Exhaustion is
	// checked per inserted tuple, so the cut is exact and — because
	// inserts are serialized in the canonical order for every worker-pool
	// size — deterministic.
	MaxTuples int
	// MaxJoinSteps bounds how many join edges the generator executes.
	// 0 means unlimited.
	MaxJoinSteps int
	// MaxResultBytes approximately bounds the rendered size of the result
	// data (sum of value encodings plus per-tuple overhead). 0 means
	// unlimited. Like MaxTuples it is checked per inserted tuple.
	MaxResultBytes int
	// Now, when non-nil, replaces time.Now for deadline checks — a test
	// hook that makes deadline truncation deterministic. Leave nil in
	// production.
	Now func() time.Time
}

// IsZero reports whether the budget imposes no bounds.
func (b Budget) IsZero() bool {
	return b.Deadline.IsZero() && b.MaxTuples <= 0 && b.MaxJoinSteps <= 0 && b.MaxResultBytes <= 0
}

// budgetTracker enforces a Budget during one generation run. Tuple, byte
// and step accounting happen only on the coordination goroutine (inserts
// and edge picks are serialized there), but deadline checks also run inside
// fetch workers, and the first-exhaustion record must be race-safe — hence
// the atomic reason slot.
type budgetTracker struct {
	b      Budget
	steps  int
	tuples int
	bytes  int
	// reason holds the first TruncationReason observed; CAS so the first
	// exhaustion wins under concurrent deadline checks.
	reason atomic.Pointer[TruncationReason]
}

// newBudgetTracker returns a tracker, or nil for a zero budget (nil
// receivers make every check a no-op, so unbudgeted queries pay nothing).
func newBudgetTracker(b Budget) *budgetTracker {
	if b.IsZero() {
		return nil
	}
	return &budgetTracker{b: b}
}

// now resolves the tracker's clock.
func (t *budgetTracker) now() time.Time {
	if t.b.Now != nil {
		return t.b.Now()
	}
	return time.Now()
}

// trip records the first exhaustion reason and reports the current one.
func (t *budgetTracker) trip(r TruncationReason) {
	t.reason.CompareAndSwap(nil, &r)
}

// Reason returns the recorded truncation reason (TruncateNone while the
// budget holds).
func (t *budgetTracker) Reason() TruncationReason {
	if t == nil {
		return TruncateNone
	}
	if p := t.reason.Load(); p != nil {
		return *p
	}
	return TruncateNone
}

// exhausted reports whether any budget dimension has tripped.
func (t *budgetTracker) exhausted() bool {
	return t != nil && t.reason.Load() != nil
}

// checkDeadline trips the deadline dimension when the clock has passed it.
// Safe to call from fetch workers.
func (t *budgetTracker) checkDeadline() bool {
	if t == nil {
		return false
	}
	if t.reason.Load() != nil {
		return true
	}
	if !t.b.Deadline.IsZero() && t.now().After(t.b.Deadline) {
		t.trip(TruncateDeadline)
		return true
	}
	return false
}

// admitStep accounts one join edge and reports whether it may execute.
// Coordination goroutine only.
func (t *budgetTracker) admitStep() bool {
	if t == nil {
		return true
	}
	if t.checkDeadline() || t.exhausted() {
		return false
	}
	if t.b.MaxJoinSteps > 0 && t.steps >= t.b.MaxJoinSteps {
		t.trip(TruncateStepBudget)
		return false
	}
	t.steps++
	return true
}

// admitTuple accounts one materialized tuple of the given row and reports
// whether it may be inserted. Coordination goroutine only. Seed inserts
// pass seed=true: they are always admitted (the answer's guaranteed core)
// but still accounted, so the budget is charged for them.
func (t *budgetTracker) admitTuple(row []storage.Value, seed bool) bool {
	if t == nil {
		return true
	}
	if !seed {
		if t.checkDeadline() || t.exhausted() {
			return false
		}
		if t.b.MaxTuples > 0 && t.tuples >= t.b.MaxTuples {
			t.trip(TruncateTupleBudget)
			return false
		}
		if t.b.MaxResultBytes > 0 && t.bytes >= t.b.MaxResultBytes {
			t.trip(TruncateByteBudget)
			return false
		}
	}
	t.tuples++
	t.bytes += approxRowBytes(row)
	return true
}

// remainingTuples returns the optimistic number of tuples the budget still
// admits (used to tighten fetch limits); MaxInt-ish when unbounded.
func (t *budgetTracker) remainingTuples() int {
	if t == nil || t.b.MaxTuples <= 0 {
		return int(^uint(0) >> 1) // MaxInt
	}
	r := t.b.MaxTuples - t.tuples
	if r < 0 {
		return 0
	}
	return r
}

// approxRowBytes estimates the rendered size of one fetched row (rowid
// included): value string lengths plus a fixed per-value overhead.
func approxRowBytes(row []storage.Value) int {
	n := 16 // per-tuple overhead
	for _, v := range row {
		n += 8 + len(v.String())
	}
	return n
}

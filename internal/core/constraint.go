// Package core implements the paper's primary contribution: answering
// précis queries. It contains the Result Schema Generator (Figure 3), the
// Result Database Generator (Figure 5) with its NaïveQ and Round-Robin
// tuple-retrieval strategies, and the degree and cardinality constraints
// (Tables 1 and 2) that bound the schema and data size of an answer.
package core

import (
	"fmt"
	"math"
	"strings"

	"precis/internal/schemagraph"
)

// DegreeConstraint is the d(.) predicate of the paper (Table 1). The result
// schema generator considers candidate paths in decreasing weight order and
// asks whether the ordered prefix P_d ∪ {p} still satisfies the constraint.
// selected contains the projection paths accepted so far; candidate may be a
// projection path (about to be accepted) or a join path (about to be
// expanded — accepting it must leave room for at least one more projection,
// otherwise expansion is pointless and the path is pruned).
type DegreeConstraint interface {
	Accept(selected []*schemagraph.Path, candidate *schemagraph.Path) bool
	String() string
}

// topProjections implements "t <= r": at most r top-weighted projections.
type topProjections struct{ r int }

// TopProjections keeps the r top-weighted projection paths.
func TopProjections(r int) DegreeConstraint { return topProjections{r} }

func (c topProjections) Accept(selected []*schemagraph.Path, candidate *schemagraph.Path) bool {
	if candidate.IsProjection() {
		return len(selected)+1 <= c.r
	}
	return len(selected) < c.r
}

func (c topProjections) String() string { return fmt.Sprintf("t <= %d", c.r) }

// maxAttributes implements the degree used in the paper's Figure 7
// experiment: the maximum number of distinct attributes projected in the
// answer. It differs from TopProjections when paths from several seed
// relations project the same attribute.
//
// Accept is called once per candidate path with an append-only selected
// slice, so the distinct-attribute set is memoized incrementally: the cache
// is valid while selected is a same-backing extension of the slice it was
// built from, and rebuilt from scratch otherwise.
type maxAttributes struct {
	n int

	cachedFrom []*schemagraph.Path // prefix the cache was built over
	attrs      map[string]bool
}

// MaxAttributes bounds the number of distinct projected attributes. The
// returned constraint carries a memo and must not be shared between
// concurrent generator runs; create one per query.
func MaxAttributes(n int) DegreeConstraint { return &maxAttributes{n: n} }

func (c *maxAttributes) distinct(selected []*schemagraph.Path) map[string]bool {
	valid := c.attrs != nil && len(c.cachedFrom) <= len(selected)
	if valid && len(c.cachedFrom) > 0 && c.cachedFrom[0] != selected[0] {
		valid = false
	}
	if valid {
		// Extend over the newly appended suffix only.
		for _, p := range selected[len(c.cachedFrom):] {
			c.attrs[p.Proj.Key()] = true
		}
	} else {
		c.attrs = make(map[string]bool, len(selected))
		for _, p := range selected {
			c.attrs[p.Proj.Key()] = true
		}
	}
	c.cachedFrom = selected
	return c.attrs
}

func (c *maxAttributes) Accept(selected []*schemagraph.Path, candidate *schemagraph.Path) bool {
	attrs := c.distinct(selected)
	if candidate.IsProjection() {
		if attrs[candidate.Proj.Key()] {
			return true
		}
		return len(attrs)+1 <= c.n
	}
	return len(attrs) < c.n
}

func (c *maxAttributes) String() string { return fmt.Sprintf("attrs <= %d", c.n) }

// minPathWeight implements "w_t >= w0": only projections whose transitive
// path weight meets the threshold. The paper recommends it as the constraint
// most immune to database restructuring (§3.4).
type minPathWeight struct{ w float64 }

// MinPathWeight keeps projections with path weight >= w.
func MinPathWeight(w float64) DegreeConstraint { return minPathWeight{w} }

func (c minPathWeight) Accept(_ []*schemagraph.Path, candidate *schemagraph.Path) bool {
	return candidate.Weight() >= c.w
}

func (c minPathWeight) String() string { return fmt.Sprintf("w >= %v", c.w) }

// maxPathLength implements "length(p_t) <= l0".
type maxPathLength struct{ l int }

// MaxPathLength keeps projection paths of length at most l (a join path of
// length l-1 may still grow a projection edge, so join paths pass while
// strictly shorter than l).
func MaxPathLength(l int) DegreeConstraint { return maxPathLength{l} }

func (c maxPathLength) Accept(_ []*schemagraph.Path, candidate *schemagraph.Path) bool {
	if candidate.IsProjection() {
		return candidate.Len() <= c.l
	}
	return candidate.Len() < c.l
}

func (c maxPathLength) String() string { return fmt.Sprintf("len <= %d", c.l) }

// allDegree combines constraints conjunctively.
type allDegree struct{ cs []DegreeConstraint }

// AllDegree requires every constraint to hold.
func AllDegree(cs ...DegreeConstraint) DegreeConstraint { return allDegree{cs} }

func (c allDegree) Accept(selected []*schemagraph.Path, candidate *schemagraph.Path) bool {
	for _, d := range c.cs {
		if !d.Accept(selected, candidate) {
			return false
		}
	}
	return true
}

func (c allDegree) String() string {
	parts := make([]string, len(c.cs))
	for i, d := range c.cs {
		parts[i] = d.String()
	}
	return strings.Join(parts, " and ")
}

// CardinalityConstraint is the c(.) predicate of the paper (Table 2). The
// result database generator asks for the remaining tuple budget of a
// relation given the tuples placed so far.
type CardinalityConstraint interface {
	// Budget returns how many more tuples may be added to rel, given the
	// current per-relation counts and total count. math.MaxInt means
	// unlimited.
	Budget(rel string, perRel map[string]int, total int) int
	String() string
}

// maxTuplesPerRelation implements "card(R_t) <= c0".
type maxTuplesPerRelation struct{ c int }

// MaxTuplesPerRelation caps every result relation at c tuples.
func MaxTuplesPerRelation(c int) CardinalityConstraint { return maxTuplesPerRelation{c} }

func (k maxTuplesPerRelation) Budget(rel string, perRel map[string]int, _ int) int {
	b := k.c - perRel[rel]
	if b < 0 {
		return 0
	}
	return b
}

func (k maxTuplesPerRelation) String() string { return fmt.Sprintf("card(R) <= %d", k.c) }

// maxTotalTuples implements "card(D') <= c0".
type maxTotalTuples struct{ c int }

// MaxTotalTuples caps the whole result database at c tuples.
func MaxTotalTuples(c int) CardinalityConstraint { return maxTotalTuples{c} }

func (k maxTotalTuples) Budget(_ string, _ map[string]int, total int) int {
	b := k.c - total
	if b < 0 {
		return 0
	}
	return b
}

func (k maxTotalTuples) String() string { return fmt.Sprintf("card(D) <= %d", k.c) }

// unlimited imposes no bound.
type unlimited struct{}

// Unlimited imposes no cardinality bound.
func Unlimited() CardinalityConstraint { return unlimited{} }

func (unlimited) Budget(string, map[string]int, int) int { return math.MaxInt }
func (unlimited) String() string                         { return "unbounded" }

// allCardinality combines constraints conjunctively (minimum budget wins),
// the paper's "a combination of those is also possible".
type allCardinality struct{ cs []CardinalityConstraint }

// AllCardinality requires every constraint to hold.
func AllCardinality(cs ...CardinalityConstraint) CardinalityConstraint { return allCardinality{cs} }

func (k allCardinality) Budget(rel string, perRel map[string]int, total int) int {
	b := math.MaxInt
	for _, c := range k.cs {
		if cb := c.Budget(rel, perRel, total); cb < b {
			b = cb
		}
	}
	return b
}

func (k allCardinality) String() string {
	parts := make([]string, len(k.cs))
	for i, c := range k.cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, " and ")
}

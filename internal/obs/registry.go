// Package obs is the engine's observability substrate: a lock-free metrics
// registry (atomic counters, gauges, and log-scale latency histograms with
// Prometheus text exposition) plus per-query pipeline traces of typed spans.
//
// Design constraints, in order:
//
//  1. The hot path must stay hot. Counter/Gauge/Histogram updates are single
//     atomic operations on pre-resolved pointers — the registry map is only
//     consulted at wire-up time, never per query. Tracing has a strict no-op
//     fast path: every method is nil-receiver-safe, so a disabled trace is a
//     nil pointer and costs a predicted branch, zero allocations.
//  2. One source of truth. The same atomics back /metrics, /api/stats, the
//     slow-query log and CacheStats, so two endpoints can never disagree
//     about a number (they can at most snapshot it at different instants).
//  3. No dependencies. The package imports only the standard library and is
//     imported by every layer (core, anscache, web, cmd); it must therefore
//     never import them back.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic value that can go up and down (in-flight requests,
// queue depth, resident cache entries).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of finite histogram buckets: upper bounds grow
// ×2 from 1µs, so bucket i covers values ≤ 2^i µs. 31 buckets reach ~2147s,
// far past any query the admission layer would let live; overflow lands in
// +Inf. Log-scale bounds keep the histogram lock-free and allocation-free —
// observation is one shift, one bounds clamp, three atomic adds.
const histBuckets = 31

// Histogram is a lock-free log₂-scale latency histogram. Values are
// observed in seconds (the Prometheus base unit for time); bucket upper
// bounds are 1µs·2^i.
type Histogram struct {
	count   atomic.Uint64
	sumNano atomic.Int64
	buckets [histBuckets]atomic.Uint64
	inf     atomic.Uint64
}

// Observe records one value, given in seconds.
func (h *Histogram) Observe(seconds float64) {
	if h == nil {
		return
	}
	h.ObserveNanos(int64(seconds * 1e9))
}

// ObserveNanos records one value, given in nanoseconds (the natural unit of
// time.Duration — callers pass d.Nanoseconds() and skip float conversion).
func (h *Histogram) ObserveNanos(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNano.Add(ns)
	// Bucket index: smallest i with ns <= 1000·2^i (bounds are inclusive,
	// matching Prometheus le semantics).
	idx, bound := 0, int64(1000)
	for ns > bound {
		if idx++; idx >= histBuckets {
			h.inf.Add(1)
			return
		}
		bound <<= 1
	}
	h.buckets[idx].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SumSeconds returns the sum of all observed values in seconds.
func (h *Histogram) SumSeconds() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumNano.Load()) / 1e9
}

// bucketBound returns the upper bound of finite bucket i in seconds.
func bucketBound(i int) float64 { return 1e-6 * math.Pow(2, float64(i)) }

// metricKind tags registry entries for the # TYPE exposition line.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered instrument.
type metric struct {
	name   string // base metric name, no labels
	labels string // rendered label pairs: `k="v",k2="v2"` or ""
	kind   metricKind
	ctr    *Counter
	gauge  *Gauge
	gfn    func() float64
	hist   *Histogram
	help   string
}

// fullName renders name{labels}.
func (m *metric) fullName() string {
	if m.labels == "" {
		return m.name
	}
	return m.name + "{" + m.labels + "}"
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Registration takes a mutex; it happens at wire-up
// time. The returned instrument pointers are then updated lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // keyed by fullName
	help    map[string]string  // base name -> HELP text
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]*metric),
		help:    make(map[string]string),
	}
}

// renderLabels turns ["k","v","k2","v2"] into `k="v",k2="v2"`. Odd
// trailing elements are dropped.
func renderLabels(pairs []string) string {
	if len(pairs) < 2 {
		return ""
	}
	var sb strings.Builder
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(pairs[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(pairs[i+1]))
		sb.WriteByte('"')
	}
	return sb.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter returns the counter registered under name and the given label
// pairs, creating it on first use. Calling again with the same name and
// labels returns the same counter, so values are monotonic across
// re-wiring (an engine cache resized, a server rebuilt).
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	m := r.lookup(name, labelPairs, kindCounter)
	return m.ctr
}

// Gauge returns the gauge registered under name + labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	m := r.lookup(name, labelPairs, kindGauge)
	return m.gauge
}

// Histogram returns the histogram registered under name + labels, creating
// it on first use.
func (r *Registry) Histogram(name string, labelPairs ...string) *Histogram {
	m := r.lookup(name, labelPairs, kindHistogram)
	return m.hist
}

// GaugeFunc registers a callback-backed gauge: fn is evaluated at scrape
// time. Use for values another structure already owns (resident cache
// entries, database tuple counts). Re-registering the same name + labels
// replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64, labelPairs ...string) {
	labels := renderLabels(labelPairs)
	full := name
	if labels != "" {
		full = name + "{" + labels + "}"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics[full] = &metric{name: name, labels: labels, kind: kindGaugeFunc, gfn: fn}
}

// Help attaches HELP text to a base metric name, emitted once before the
// metric's TYPE line.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// lookup is the get-or-create core shared by the typed accessors. A kind
// mismatch on an existing name panics: it is a wiring bug, not a runtime
// condition.
func (r *Registry) lookup(name string, labelPairs []string, kind metricKind) *metric {
	labels := renderLabels(labelPairs)
	full := name
	if labels != "" {
		full = name + "{" + labels + "}"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[full]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as a different kind", full))
		}
		return m
	}
	m := &metric{name: name, labels: labels, kind: kind}
	switch kind {
	case kindCounter:
		m.ctr = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		m.hist = &Histogram{}
	}
	r.metrics[full] = m
	return m
}

// snapshot returns the registered metrics sorted by base name then labels,
// so exposition output is deterministic and label variants of one metric
// group under a single TYPE line.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers once per base name,
// counter and gauge samples, and for histograms the cumulative _bucket
// series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	lastName := ""
	for _, m := range r.snapshot() {
		if m.name != lastName {
			if h, ok := help[m.name]; ok {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, h); err != nil {
					return err
				}
			}
			typ := "counter"
			switch m.kind {
			case kindGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typ); err != nil {
				return err
			}
			lastName = m.name
		}
		if err := writeMetric(w, m); err != nil {
			return err
		}
	}
	return nil
}

// writeMetric renders one instrument's sample lines.
func writeMetric(w io.Writer, m *metric) error {
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", m.fullName(), m.ctr.Load())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %d\n", m.fullName(), m.gauge.Load())
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s %s\n", m.fullName(), formatFloat(m.gfn()))
		return err
	case kindHistogram:
		return writeHistogram(w, m)
	}
	return nil
}

// writeHistogram renders the cumulative bucket series.
func writeHistogram(w io.Writer, m *metric) error {
	h := m.hist
	sep := ""
	if m.labels != "" {
		sep = ","
	}
	suffix := "" // label block for _sum/_count: omitted when unlabeled
	if m.labels != "" {
		suffix = "{" + m.labels + "}"
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		cum += n
		if n == 0 && i != histBuckets-1 {
			// Empty interior buckets are elided to keep the exposition
			// small; cumulative semantics make this lossless as long as
			// every non-empty bucket (and the final finite bound) appears.
			continue
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n",
			m.name, m.labels, sep, formatFloat(bucketBound(i)), cum); err != nil {
			return err
		}
	}
	cum += h.inf.Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", m.name, m.labels, sep, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.name, suffix, formatFloat(h.SumSeconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, suffix, h.count.Load())
	return err
}

// formatFloat renders a float without exponent noise for round values.
func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("precis_test_total")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d", got)
	}
	// Get-or-create returns the same instrument.
	if r.Counter("precis_test_total") != c {
		t.Error("Counter did not return the registered instrument")
	}
	g := r.Gauge("precis_test_gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Errorf("gauge = %d", got)
	}
	// Labeled variants are distinct instruments.
	a := r.Counter("precis_labeled_total", "reason", "a")
	b := r.Counter("precis_labeled_total", "reason", "b")
	if a == b {
		t.Error("label variants share an instrument")
	}
}

func TestNilInstrumentsAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Trace
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	h.ObserveNanos(100)
	sp := tr.StartSpan("x")
	sp.End()
	st := tr.StartStep("y")
	st.End(1, 1)
	tr.Finish()
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 {
		t.Error("nil instruments recorded values")
	}
	if tr.SpanSum() != 0 || tr.SpanDur("x") != 0 {
		t.Error("nil trace recorded spans")
	}
	if tr.String() != "<no trace>" {
		t.Errorf("nil trace String = %q", tr.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("precis_test_seconds")
	h.ObserveNanos(500)                     // ≤ 1µs bucket (idx 0)
	h.ObserveNanos(1000)                    // exactly 1µs: inclusive bound, idx 0
	h.ObserveNanos(1001)                    // just past: idx 1 (≤ 2µs)
	h.ObserveNanos(int64(time.Millisecond)) // 1ms = 1024µs > 2^9·µs, idx 10
	h.Observe(3600)                         // one hour: past the last finite bound → +Inf
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d", got)
	}
	wantSum := (500 + 1000 + 1001 + 1e6 + 3600e9) / 1e9
	if got := h.SumSeconds(); got < wantSum*0.999 || got > wantSum*1.001 {
		t.Errorf("sum = %v want ≈ %v", got, wantSum)
	}
	if h.buckets[0].Load() != 2 {
		t.Errorf("bucket 0 = %d", h.buckets[0].Load())
	}
	if h.buckets[1].Load() != 1 {
		t.Errorf("bucket 1 = %d", h.buckets[1].Load())
	}
	if h.buckets[10].Load() != 1 {
		t.Errorf("bucket 10 = %d", h.buckets[10].Load())
	}
	if h.inf.Load() != 1 {
		t.Errorf("+Inf = %d", h.inf.Load())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Help("precis_queries_total", "total queries answered")
	r.Counter("precis_queries_total").Add(3)
	r.Counter("precis_truncations_total", "reason", "deadline").Add(2)
	r.Counter("precis_truncations_total", "reason", "tuple-budget").Inc()
	r.Gauge("precis_inflight").Set(4)
	r.GaugeFunc("precis_db_tuples", func() float64 { return 42 })
	h := r.Histogram("precis_query_seconds")
	h.ObserveNanos(int64(2 * time.Millisecond))
	h.ObserveNanos(int64(500 * time.Microsecond))

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP precis_queries_total total queries answered",
		"# TYPE precis_queries_total counter",
		"precis_queries_total 3",
		"# TYPE precis_truncations_total counter",
		`precis_truncations_total{reason="deadline"} 2`,
		`precis_truncations_total{reason="tuple-budget"} 1`,
		"# TYPE precis_inflight gauge",
		"precis_inflight 4",
		"precis_db_tuples 42",
		"# TYPE precis_query_seconds histogram",
		`precis_query_seconds_bucket{le="+Inf"} 2`,
		"precis_query_seconds_count 2",
		"precis_query_seconds_sum 0.0025",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// TYPE lines appear once per base name even with label variants.
	if strings.Count(out, "# TYPE precis_truncations_total counter") != 1 {
		t.Error("duplicate TYPE line for labeled counter")
	}
	// Histogram buckets are cumulative: the 2ms observation lands at a
	// bucket whose cumulative count includes the 500µs one.
	if !strings.Contains(out, `le="0.000512"} 1`) {
		t.Errorf("512µs cumulative bucket missing\n%s", out)
	}
	if !strings.Contains(out, `le="0.002048"} 2`) {
		t.Errorf("2048µs cumulative bucket missing\n%s", out)
	}
	// Exposition format sanity: every non-comment line is "name value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("precis_esc_total", "q", `say "hi"\there`).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `q="say \"hi\"\\there"`) {
		t.Errorf("escaping: %s", sb.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("precis_conc_total").Inc()
				r.Gauge("precis_conc_gauge").Add(1)
				r.Histogram("precis_conc_seconds").ObserveNanos(int64(i))
			}
		}()
	}
	// Concurrent scrapes race only against atomics.
	for i := 0; i < 4; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := r.Counter("precis_conc_total").Load(); got != 8000 {
		t.Errorf("counter = %d", got)
	}
	if got := r.Histogram("precis_conc_seconds").Count(); got != 8000 {
		t.Errorf("histogram count = %d", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("precis_kind_total")
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind mismatch")
		}
	}()
	r.Gauge("precis_kind_total")
}

func TestTraceSpansAndSteps(t *testing.T) {
	tr := NewTrace()
	sp := tr.StartSpan(StageIndexLookup)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	sp = tr.StartSpan(StageDBGen)
	st := tr.StartStep("seeds")
	time.Sleep(time.Millisecond)
	st.End(12, 3)
	sp.End()
	tr.Finish()

	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d", len(tr.Spans))
	}
	if tr.SpanDur(StageIndexLookup) < 2*time.Millisecond {
		t.Errorf("index_lookup span too short: %v", tr.SpanDur(StageIndexLookup))
	}
	if tr.SpanSum() > tr.Total {
		t.Errorf("span sum %v exceeds total %v", tr.SpanSum(), tr.Total)
	}
	if len(tr.Steps) != 1 || tr.Steps[0].Tuples != 12 || tr.Steps[0].Queries != 3 {
		t.Errorf("steps = %+v", tr.Steps)
	}
	// Steps nest inside their enclosing span.
	dbgen := tr.Spans[1]
	if tr.Steps[0].Start < dbgen.Start || tr.Steps[0].Start+tr.Steps[0].Dur > dbgen.Start+dbgen.Dur {
		t.Errorf("step %+v escapes span %+v", tr.Steps[0], dbgen)
	}
	s := tr.String()
	if !strings.Contains(s, "index_lookup=") || !strings.Contains(s, "seeds 12t/3q") {
		t.Errorf("String = %q", s)
	}
}

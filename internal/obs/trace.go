package obs

import (
	"fmt"
	"strings"
	"time"
)

// Stage names of the précis pipeline (paper §4–§5), used as span names and
// as the `stage` label of the per-stage latency histograms. Keeping them in
// one place guarantees the trace a query returns and the histogram a
// dashboard plots speak the same vocabulary.
const (
	StageTokenize    = "tokenize"     // query-term normalization + cache-key fingerprint
	StageCacheLookup = "cache_lookup" // answer-cache probe (hit → pipeline skipped)
	StageIndexLookup = "index_lookup" // inverted-index probes (§4, step 1)
	StageSchemaGen   = "schema_gen"   // result schema generation (§4, step 2)
	StageDBGen       = "db_gen"       // result database generation (§5, step 3)
	StageTranslate   = "translate"    // natural-language synthesis (§4, step 4)
)

// Span is one timed region of a query pipeline. Top-level spans are the
// pipeline stages; the db_gen stage additionally records fine-grained Steps
// (seed placement and every join edge) with tuple counts.
type Span struct {
	// Name is the stage name (one of the Stage* constants).
	Name string `json:"name"`
	// Start is the span's offset from the trace's begin instant.
	Start time.Duration `json:"start"`
	// Dur is the span's wall-clock duration.
	Dur time.Duration `json:"dur"`
}

// Step is one fine-grained unit of result-database generation: the seed
// placement or one join edge, with the physical work it did.
type Step struct {
	// Name identifies the step: "seeds" or "join:FROM->TO".
	Name string `json:"name"`
	// Start is the step's offset from the trace's begin instant.
	Start time.Duration `json:"start"`
	// Dur is the step's wall-clock duration.
	Dur time.Duration `json:"dur"`
	// Tuples is the number of tuples this step materialized into D'.
	Tuples int `json:"tuples"`
	// Queries is the number of generated queries the step issued.
	Queries int `json:"queries"`
}

// Trace records the per-stage timing of one précis query. A nil *Trace is
// the disabled state: every method no-ops, so untraced queries pay one nil
// check per stage and zero allocations.
//
// A Trace is single-writer: spans and steps are recorded on the query's
// coordination goroutine only (fetch workers never touch it), so no locking
// is needed. Readers must wait for the query to return — which they always
// do, since the trace is handed out on the Answer.
type Trace struct {
	begin time.Time
	// Total is the wall time from NewTrace to Finish.
	Total time.Duration `json:"total"`
	// Spans are the top-level pipeline stages, in execution order. They are
	// contiguous and non-overlapping, so their durations sum to ≈ Total
	// (minus inter-stage glue: option resolution, cache bookkeeping).
	Spans []Span `json:"spans"`
	// Steps are the db_gen stage's fine-grained steps, in execution order.
	Steps []Step `json:"steps,omitempty"`
}

// NewTrace starts a trace at the current instant.
func NewTrace() *Trace {
	return &Trace{begin: time.Now()}
}

// since returns the offset of now from the trace's begin.
func (t *Trace) since() time.Duration { return time.Since(t.begin) }

// Finish stamps the trace's total wall time. Call once, after the last
// span ended.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.Total = t.since()
}

// SpanToken is an in-flight span handle returned by StartSpan. The zero
// value (from a nil trace) is inert.
type SpanToken struct {
	t     *Trace
	name  string
	start time.Duration
}

// StartSpan opens a top-level stage span. Nil-safe: on a nil trace the
// returned token is inert and End costs one branch.
func (t *Trace) StartSpan(name string) SpanToken {
	if t == nil {
		return SpanToken{}
	}
	return SpanToken{t: t, name: name, start: t.since()}
}

// End closes the span and records it.
func (s SpanToken) End() {
	if s.t == nil {
		return
	}
	s.t.Spans = append(s.t.Spans, Span{Name: s.name, Start: s.start, Dur: s.t.since() - s.start})
}

// StepToken is an in-flight step handle returned by StartStep. The zero
// value is inert.
type StepToken struct {
	t     *Trace
	name  string
	start time.Duration
}

// StartStep opens a fine-grained db_gen step. Nil-safe.
func (t *Trace) StartStep(name string) StepToken {
	if t == nil {
		return StepToken{}
	}
	return StepToken{t: t, name: name, start: t.since()}
}

// End closes the step, recording the tuples it materialized and the
// queries it issued.
func (s StepToken) End(tuples, queries int) {
	if s.t == nil {
		return
	}
	s.t.Steps = append(s.t.Steps, Step{
		Name: s.name, Start: s.start, Dur: s.t.since() - s.start,
		Tuples: tuples, Queries: queries,
	})
}

// RecordStep appends a step whose duration was measured externally — the
// shard scatter/gather fetcher tallies per-shard busy time with atomics on
// its worker goroutines and records the totals here, on the coordination
// goroutine, once the generation finished. Start is back-dated so the step
// sits inside the enclosing db_gen span. Nil-safe.
func (t *Trace) RecordStep(name string, dur time.Duration, tuples, queries int) {
	if t == nil {
		return
	}
	start := t.since() - dur
	if start < 0 {
		start = 0
	}
	t.Steps = append(t.Steps, Step{Name: name, Start: start, Dur: dur, Tuples: tuples, Queries: queries})
}

// SpanDur returns the duration of the named top-level span (0 when absent).
func (t *Trace) SpanDur(name string) time.Duration {
	if t == nil {
		return 0
	}
	for i := range t.Spans {
		if t.Spans[i].Name == name {
			return t.Spans[i].Dur
		}
	}
	return 0
}

// SpanSum returns the sum of all top-level span durations. On a well-formed
// trace this approximates Total from below.
func (t *Trace) SpanSum() time.Duration {
	if t == nil {
		return 0
	}
	var sum time.Duration
	for i := range t.Spans {
		sum += t.Spans[i].Dur
	}
	return sum
}

// String renders the trace as one human-readable line:
//
//	total=1.2ms tokenize=10µs index_lookup=80µs schema_gen=40µs db_gen=900µs translate=120µs (steps: seeds 12t/1q, join:MOVIE->CAST 30t/2q)
func (t *Trace) String() string {
	if t == nil {
		return "<no trace>"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "total=%v", t.Total.Round(time.Microsecond))
	for _, s := range t.Spans {
		fmt.Fprintf(&sb, " %s=%v", s.Name, s.Dur.Round(time.Microsecond))
	}
	if len(t.Steps) > 0 {
		sb.WriteString(" (steps:")
		for i, st := range t.Steps {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, " %s %dt/%dq", st.Name, st.Tuples, st.Queries)
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

package dataset

import (
	"fmt"

	"precis/internal/schemagraph"
)

// StandardMacros returns the macro definitions (paper §5.3 syntax) used by
// the movies narrative: lists of movies with years, genres, actors and
// theatres with correct separators.
func StandardMacros() []string {
	return []string{
		`DEFINE MOVIE_LIST as [i<arityOf(@TITLE)] {@TITLE[$i$] + " (" + @YEAR[$i$] + "), "} [i=arityOf(@TITLE)] {@TITLE[$i$] + " (" + @YEAR[$i$] + ")."}`,
		`DEFINE GENRE_LIST as [i<arityOf(@GENRE)] {@GENRE[$i$] + ", "} [i=arityOf(@GENRE)] {@GENRE[$i$] + "."}`,
		`DEFINE ACTOR_LIST as [i<arityOf(@ANAME)] {@ANAME[$i$] + ", "} [i=arityOf(@ANAME)] {@ANAME[$i$] + "."}`,
		`DEFINE THEATRE_LIST as [i<arityOf(@NAME)] {@NAME[$i$] + ", "} [i=arityOf(@NAME)] {@NAME[$i$] + "."}`,
	}
}

// AnnotateNarrative attaches the §5.3 sentence templates and join-edge
// labels to a movies schema graph, so the translator can produce the
// paper's narrative:
//
//	Woody Allen was born on December 1, 1935 in Brooklyn, New York, USA.
//	As a director, Woody Allen's work includes Match Point (2005), ...
//	Match Point is Drama, Thriller. ...
func AnnotateNarrative(g *schemagraph.Graph) error {
	// Sentence templates are section-based so that attributes the degree
	// constraint excluded simply drop out of the clause instead of leaving
	// holes ("was born on in").
	sentences := map[string]string{
		"DIRECTOR": `@DNAME [i=arityOf(@BDATE)] {" was born on " + @BDATE} [i=arityOf(@BLOCATION)] {" in " + @BLOCATION} "."`,
		"ACTOR":    `@ANAME [i=arityOf(@BDATE)] {" was born on " + @BDATE} [i=arityOf(@BLOCATION)] {" in " + @BLOCATION} "."`,
		"MOVIE":    `@TITLE + " (" + @YEAR + ")."`,
		"GENRE":    `"Genre: " + @GENRE + "."`,
		"THEATRE":  `@NAME + " is a theatre in " + @REGION + " (phone " + @PHONE + ")."`,
	}
	for rel, tpl := range sentences {
		n := g.Relation(rel)
		if n == nil {
			return fmt.Errorf("dataset: annotate: no relation %s", rel)
		}
		n.Sentence = tpl
	}

	labels := map[[2]string]string{
		{"DIRECTOR", "MOVIE"}: `"As a director, " + @DNAME + "'s work includes " + MOVIE_LIST`,
		{"CAST", "MOVIE"}:     `"As an actor, " + @ANAME + "'s work includes " + MOVIE_LIST`,
		{"MOVIE", "GENRE"}:    `@TITLE + " is " + GENRE_LIST`,
		{"MOVIE", "DIRECTOR"}: `@TITLE + " was directed by " + @DNAME + "."`,
		{"GENRE", "MOVIE"}:    `"Movies of genre " + @GENRE + " include " + MOVIE_LIST`,
		{"CAST", "ACTOR"}:     `"The cast of " + @TITLE + " includes " + ACTOR_LIST`,
		{"PLAY", "THEATRE"}:   `@TITLE + " plays at " + THEATRE_LIST`,
		{"PLAY", "MOVIE"}:     `"Movies playing at " + @NAME + " include " + MOVIE_LIST`,
		// ACTOR->CAST, MOVIE->CAST, MOVIE->PLAY, THEATRE->PLAY carry no
		// label: CAST and PLAY are heading-less junctions the renderer
		// traverses through, keeping the current subject.
	}
	for key, tpl := range labels {
		n := g.Relation(key[0])
		if n == nil {
			return fmt.Errorf("dataset: annotate: no relation %s", key[0])
		}
		found := false
		for _, e := range n.Out() {
			if e.To == key[1] {
				e.Label = tpl
				found = true
			}
		}
		if !found {
			return fmt.Errorf("dataset: annotate: no join edge %s -> %s", key[0], key[1])
		}
	}
	return nil
}

package dataset

import (
	"fmt"
	"math/rand"

	"precis/internal/schemagraph"
	"precis/internal/storage"
)

// ChainConfig describes the randomly generated multi-relation databases the
// experiments of §6 run over ("sets of 4 relations, making sure that there
// is no relation in any set that does not join with another relation of this
// set"). Relations form a chain R0 <- R1 <- ... <- R(n-1): each Ri (i>0)
// carries a foreign key to R(i-1), giving a 1-n join in the forward
// direction and an n-1 join backwards, so both NaïveQ and Round-Robin code
// paths are exercised.
type ChainConfig struct {
	Relations   int   // n_R: number of relations in the chain
	RowsPerRel  int   // tuples in R0; children multiply by Fanout
	Fanout      int   // children per parent tuple (1-n join selectivity)
	Seed        int64 // PRNG seed
	UniformRows bool  // if true every relation has RowsPerRel tuples (fanout randomized)
}

// DefaultChainConfig returns the shape used by Figures 8 and 9: 4 relations,
// a thousand rows each, fanout 3.
func DefaultChainConfig() ChainConfig {
	return ChainConfig{Relations: 4, RowsPerRel: 1000, Fanout: 3, Seed: 1, UniformRows: true}
}

// Chain builds a random chain database plus a schema graph whose join edges
// follow both directions with weight 1 and whose non-key attributes carry
// weight 1 projections. Relation Ri has schema Ri(id, label, parent) with
// parent referencing R(i-1).id (absent for R0). Labels contain searchable
// tokens "tokR<i> v<k>".
func Chain(cfg ChainConfig) (*storage.Database, *schemagraph.Graph, error) {
	if cfg.Relations < 1 {
		return nil, nil, fmt.Errorf("dataset: chain needs >= 1 relation, got %d", cfg.Relations)
	}
	if cfg.RowsPerRel < 1 || cfg.Fanout < 1 {
		return nil, nil, fmt.Errorf("dataset: chain needs positive rows and fanout, got %+v", cfg)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	db := storage.NewDatabase(fmt.Sprintf("chain-%d", cfg.Relations))

	relName := func(i int) string { return fmt.Sprintf("R%d", i) }
	for i := 0; i < cfg.Relations; i++ {
		cols := []storage.Column{
			{Name: "id", Type: storage.TypeInt},
			{Name: "label", Type: storage.TypeString},
		}
		if i > 0 {
			cols = append(cols, storage.Column{Name: "parent", Type: storage.TypeInt})
		}
		if _, err := db.CreateRelation(storage.MustSchema(relName(i), "id", cols...)); err != nil {
			return nil, nil, err
		}
		if i > 0 {
			fk := storage.ForeignKey{
				FromRelation: relName(i), FromColumn: "parent",
				ToRelation: relName(i - 1), ToColumn: "id",
			}
			if err := db.AddForeignKey(fk); err != nil {
				return nil, nil, err
			}
		}
	}

	prevCount := 0
	for i := 0; i < cfg.Relations; i++ {
		var count int
		if i == 0 || cfg.UniformRows {
			count = cfg.RowsPerRel
		} else {
			count = prevCount * cfg.Fanout
		}
		for k := 1; k <= count; k++ {
			label := fmt.Sprintf("tok%s v%d", relName(i), k)
			vals := []storage.Value{storage.Int(int64(k)), storage.String(label)}
			if i > 0 {
				var parent int
				if cfg.UniformRows {
					parent = 1 + r.Intn(prevCount)
				} else {
					parent = (k-1)/cfg.Fanout + 1
				}
				vals = append(vals, storage.Int(int64(parent)))
			}
			if _, err := db.Insert(relName(i), vals...); err != nil {
				return nil, nil, err
			}
		}
		prevCount = count
	}
	if err := db.CreateJoinIndexes(); err != nil {
		return nil, nil, err
	}

	g := schemagraph.FromDatabase(db)
	// Key columns are join plumbing: never project them.
	for i := 0; i < cfg.Relations; i++ {
		if _, err := g.AddProjection(relName(i), "id", 0); err != nil {
			return nil, nil, err
		}
		if i > 0 {
			if _, err := g.AddProjection(relName(i), "parent", 0); err != nil {
				return nil, nil, err
			}
		}
		if err := g.SetHeading(relName(i), "label"); err != nil {
			return nil, nil, err
		}
	}
	if err := g.Validate(db); err != nil {
		return nil, nil, err
	}
	return db, g, nil
}

// RandomWeights assigns every projection and join edge of g a weight drawn
// uniformly from [lo, hi], reproducing the paper's "20 randomly generated
// sets of weights" protocol. Weights are applied in place; pass g.Clone()
// to keep the original. Heading-attribute projections keep weight 1, as the
// paper requires them always present.
func RandomWeights(g *schemagraph.Graph, lo, hi float64, seed int64) error {
	if lo < 0 || hi > 1 || lo > hi {
		return fmt.Errorf("dataset: weight range [%v, %v] outside [0,1]", lo, hi)
	}
	r := rand.New(rand.NewSource(seed))
	draw := func() float64 { return lo + r.Float64()*(hi-lo) }
	for _, rel := range g.Relations() {
		n := g.Relation(rel)
		for _, p := range n.Projections() {
			if p.Attribute == n.Heading {
				p.Weight = 1
				continue
			}
			if p.Weight == 0 {
				continue // join plumbing stays hidden
			}
			p.Weight = draw()
		}
		for _, e := range n.Out() {
			e.Weight = draw()
		}
	}
	return nil
}

// StarConfig describes a star-shaped schema: a hub relation H referenced by
// n satellite relations S1..Sn, exercising wide fan-out in the result schema
// generator (many edges attached to one node, as with MOVIE in Figure 1).
type StarConfig struct {
	Satellites int
	RowsPerRel int
	Fanout     int
	Seed       int64
}

// Star builds the star database and graph. Satellites Si(id, label, hub)
// reference HUB(id, label).
func Star(cfg StarConfig) (*storage.Database, *schemagraph.Graph, error) {
	if cfg.Satellites < 1 || cfg.RowsPerRel < 1 || cfg.Fanout < 1 {
		return nil, nil, fmt.Errorf("dataset: star needs positive sizes, got %+v", cfg)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	db := storage.NewDatabase(fmt.Sprintf("star-%d", cfg.Satellites))
	if _, err := db.CreateRelation(storage.MustSchema("HUB", "id",
		storage.Column{Name: "id", Type: storage.TypeInt},
		storage.Column{Name: "label", Type: storage.TypeString})); err != nil {
		return nil, nil, err
	}
	for k := 1; k <= cfg.RowsPerRel; k++ {
		if _, err := db.Insert("HUB", storage.Int(int64(k)), storage.String(fmt.Sprintf("tokHUB v%d", k))); err != nil {
			return nil, nil, err
		}
	}
	for s := 1; s <= cfg.Satellites; s++ {
		name := fmt.Sprintf("S%d", s)
		if _, err := db.CreateRelation(storage.MustSchema(name, "id",
			storage.Column{Name: "id", Type: storage.TypeInt},
			storage.Column{Name: "label", Type: storage.TypeString},
			storage.Column{Name: "hub", Type: storage.TypeInt})); err != nil {
			return nil, nil, err
		}
		fk := storage.ForeignKey{FromRelation: name, FromColumn: "hub", ToRelation: "HUB", ToColumn: "id"}
		if err := db.AddForeignKey(fk); err != nil {
			return nil, nil, err
		}
		for k := 1; k <= cfg.RowsPerRel*cfg.Fanout; k++ {
			hub := 1 + r.Intn(cfg.RowsPerRel)
			if _, err := db.Insert(name, storage.Int(int64(k)),
				storage.String(fmt.Sprintf("tok%s v%d", name, k)), storage.Int(int64(hub))); err != nil {
				return nil, nil, err
			}
		}
	}
	if err := db.CreateJoinIndexes(); err != nil {
		return nil, nil, err
	}
	g := schemagraph.FromDatabase(db)
	for _, rel := range db.RelationNames() {
		if _, err := g.AddProjection(rel, "id", 0); err != nil {
			return nil, nil, err
		}
		if rel != "HUB" {
			if _, err := g.AddProjection(rel, "hub", 0); err != nil {
				return nil, nil, err
			}
		}
		if err := g.SetHeading(rel, "label"); err != nil {
			return nil, nil, err
		}
	}
	if err := g.Validate(db); err != nil {
		return nil, nil, err
	}
	return db, g, nil
}

// GraphConfig describes a random schema graph (no data) for schema-generator
// experiments: the Figure 7 sweep needs graphs with enough attributes that
// degrees up to ~100 are meaningful, and "20 randomly generated sets of
// weights".
type GraphConfig struct {
	Relations   int
	AttrsPerRel int
	ExtraJoins  int // joins beyond the spanning chain that guarantees connectivity
	Seed        int64
}

// DefaultGraphConfig sizes the Figure 7 graph: 15 relations x 8 attributes
// = 120 candidate projections.
func DefaultGraphConfig() GraphConfig {
	return GraphConfig{Relations: 15, AttrsPerRel: 8, ExtraJoins: 10, Seed: 1}
}

// RandomGraph builds a connected random schema graph with random weights in
// (0, 1]: a spanning chain of bidirectional joins plus ExtraJoins random
// bidirectional edges, and AttrsPerRel weighted projections per relation.
func RandomGraph(cfg GraphConfig) (*schemagraph.Graph, error) {
	if cfg.Relations < 1 || cfg.AttrsPerRel < 1 {
		return nil, fmt.Errorf("dataset: graph needs positive sizes, got %+v", cfg)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := schemagraph.New()
	name := func(i int) string { return fmt.Sprintf("T%d", i) }
	draw := func() float64 { return 0.05 + 0.95*r.Float64() }
	for i := 0; i < cfg.Relations; i++ {
		g.AddRelation(name(i))
		for a := 0; a < cfg.AttrsPerRel; a++ {
			if _, err := g.AddProjection(name(i), fmt.Sprintf("a%d", a), draw()); err != nil {
				return nil, err
			}
		}
	}
	addBoth := func(i, j int) error {
		col := fmt.Sprintf("k%d_%d", i, j)
		if _, err := g.AddJoin(name(i), name(j), col, col, draw()); err != nil {
			return err
		}
		_, err := g.AddJoin(name(j), name(i), col, col, draw())
		return err
	}
	for i := 1; i < cfg.Relations; i++ {
		if err := addBoth(i-1, i); err != nil {
			return nil, err
		}
	}
	for e := 0; e < cfg.ExtraJoins && cfg.Relations > 2; e++ {
		i := r.Intn(cfg.Relations)
		j := r.Intn(cfg.Relations)
		if i == j {
			continue
		}
		if err := addBoth(i, j); err != nil {
			return nil, err
		}
	}
	return g, nil
}

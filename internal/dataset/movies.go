// Package dataset provides the data the paper evaluates on. The original
// experiments used an Internet Movie Database snapshot (~34,000 films) that
// is proprietary; as a substitution this package builds (a) the paper's
// hand-worked example instance, (b) a deterministic synthetic IMDB-like
// database of configurable scale with the same 7-relation schema and join
// topology, and (c) the random schemas and weight-sets the experiments in §6
// are run over. All generation is seeded and reproducible.
package dataset

import (
	"fmt"

	"precis/internal/schemagraph"
	"precis/internal/storage"
)

// MoviesSchema creates the paper's example movies schema (Figure 1):
//
//	THEATRE(tid, name, phone, region)    PLAY(tid, mid, date)
//	MOVIE(mid, title, year, did)         GENRE(mid, genre)
//	CAST(mid, aid, role)                 ACTOR(aid, aname, blocation, bdate)
//	DIRECTOR(did, dname, blocation, bdate)
//
// with the foreign keys implied by the join edges, and indexes on all join
// attributes (the paper's experimental setup).
func MoviesSchema(db *storage.Database) error {
	schemas := []*storage.Schema{
		storage.MustSchema("THEATRE", "tid",
			storage.Column{Name: "tid", Type: storage.TypeInt},
			storage.Column{Name: "name", Type: storage.TypeString},
			storage.Column{Name: "phone", Type: storage.TypeString},
			storage.Column{Name: "region", Type: storage.TypeString}),
		storage.MustSchema("PLAY", "",
			storage.Column{Name: "tid", Type: storage.TypeInt},
			storage.Column{Name: "mid", Type: storage.TypeInt},
			storage.Column{Name: "date", Type: storage.TypeString}),
		storage.MustSchema("MOVIE", "mid",
			storage.Column{Name: "mid", Type: storage.TypeInt},
			storage.Column{Name: "title", Type: storage.TypeString},
			storage.Column{Name: "year", Type: storage.TypeInt},
			storage.Column{Name: "did", Type: storage.TypeInt}),
		storage.MustSchema("GENRE", "",
			storage.Column{Name: "mid", Type: storage.TypeInt},
			storage.Column{Name: "genre", Type: storage.TypeString}),
		storage.MustSchema("CAST", "",
			storage.Column{Name: "mid", Type: storage.TypeInt},
			storage.Column{Name: "aid", Type: storage.TypeInt},
			storage.Column{Name: "role", Type: storage.TypeString}),
		storage.MustSchema("ACTOR", "aid",
			storage.Column{Name: "aid", Type: storage.TypeInt},
			storage.Column{Name: "aname", Type: storage.TypeString},
			storage.Column{Name: "blocation", Type: storage.TypeString},
			storage.Column{Name: "bdate", Type: storage.TypeString}),
		storage.MustSchema("DIRECTOR", "did",
			storage.Column{Name: "did", Type: storage.TypeInt},
			storage.Column{Name: "dname", Type: storage.TypeString},
			storage.Column{Name: "blocation", Type: storage.TypeString},
			storage.Column{Name: "bdate", Type: storage.TypeString}),
	}
	for _, s := range schemas {
		if _, err := db.CreateRelation(s); err != nil {
			return err
		}
	}
	fks := []storage.ForeignKey{
		{FromRelation: "PLAY", FromColumn: "tid", ToRelation: "THEATRE", ToColumn: "tid"},
		{FromRelation: "PLAY", FromColumn: "mid", ToRelation: "MOVIE", ToColumn: "mid"},
		{FromRelation: "GENRE", FromColumn: "mid", ToRelation: "MOVIE", ToColumn: "mid"},
		{FromRelation: "CAST", FromColumn: "mid", ToRelation: "MOVIE", ToColumn: "mid"},
		{FromRelation: "CAST", FromColumn: "aid", ToRelation: "ACTOR", ToColumn: "aid"},
		{FromRelation: "MOVIE", FromColumn: "did", ToRelation: "DIRECTOR", ToColumn: "did"},
	}
	for _, fk := range fks {
		if err := db.AddForeignKey(fk); err != nil {
			return err
		}
	}
	return db.CreateJoinIndexes()
}

// PaperGraph builds the weighted schema graph of Figure 1. The figure's
// scan is partially illegible, so the weights below are fixed to be
// consistent with every number the text states explicitly:
//
//   - projection of PHONE over THEATRE = 0.8, and over MOVIE =
//     0.7·1·0.8 = 0.56  (so MOVIE→PLAY = 0.7 and PLAY→THEATRE = 1.0);
//   - MOVIE→GENRE = 0.9 and GENRE→MOVIE = 1.0 (the worked example of §3.1);
//   - the Figure 4 result schema for w ≥ 0.9 from seeds {DIRECTOR, ACTOR}:
//     DIRECTOR{dname, blocation, bdate}, MOVIE{title, year}, GENRE{genre},
//     ACTOR{aname}, CAST present with no projected attributes;
//   - ACTOR.bdate = 0.6 and ACTOR.blocation = 0.7 (legible in the figure),
//     which correctly excludes them at the 0.9 threshold.
//
// Key and foreign-key attributes get projection weight 0: they are join
// plumbing and "will not show in the final answer" (§5.2).
func PaperGraph(db *storage.Database) (*schemagraph.Graph, error) {
	g := schemagraph.New()
	for _, rel := range db.RelationNames() {
		g.AddRelation(rel)
	}

	type proj struct {
		rel, attr string
		w         float64
	}
	projs := []proj{
		{"THEATRE", "tid", 0}, {"THEATRE", "name", 1.0}, {"THEATRE", "phone", 0.8}, {"THEATRE", "region", 0.7},
		{"PLAY", "tid", 0}, {"PLAY", "mid", 0}, {"PLAY", "date", 0.6},
		{"MOVIE", "mid", 0}, {"MOVIE", "title", 1.0}, {"MOVIE", "year", 0.9}, {"MOVIE", "did", 0},
		{"GENRE", "mid", 0}, {"GENRE", "genre", 1.0},
		{"CAST", "mid", 0}, {"CAST", "aid", 0}, {"CAST", "role", 0.7},
		{"ACTOR", "aid", 0}, {"ACTOR", "aname", 1.0}, {"ACTOR", "blocation", 0.7}, {"ACTOR", "bdate", 0.6},
		{"DIRECTOR", "did", 0}, {"DIRECTOR", "dname", 1.0}, {"DIRECTOR", "blocation", 0.95}, {"DIRECTOR", "bdate", 0.95},
	}
	for _, p := range projs {
		if _, err := g.AddProjection(p.rel, p.attr, p.w); err != nil {
			return nil, err
		}
	}

	type join struct {
		from, to, fromCol, toCol string
		w                        float64
	}
	joins := []join{
		{"DIRECTOR", "MOVIE", "did", "did", 1.0},
		{"MOVIE", "DIRECTOR", "did", "did", 0.8},
		{"ACTOR", "CAST", "aid", "aid", 1.0},
		{"CAST", "ACTOR", "aid", "aid", 0.6},
		{"CAST", "MOVIE", "mid", "mid", 1.0},
		{"MOVIE", "CAST", "mid", "mid", 0.3},
		{"MOVIE", "GENRE", "mid", "mid", 0.9},
		{"GENRE", "MOVIE", "mid", "mid", 1.0},
		{"MOVIE", "PLAY", "mid", "mid", 0.7},
		{"PLAY", "MOVIE", "mid", "mid", 1.0},
		{"PLAY", "THEATRE", "tid", "tid", 1.0},
		{"THEATRE", "PLAY", "tid", "tid", 0.3},
	}
	for _, j := range joins {
		if _, err := g.AddJoin(j.from, j.to, j.fromCol, j.toCol, j.w); err != nil {
			return nil, err
		}
	}

	// Heading attributes (§5.3): the attribute whose value characterizes a
	// tuple in the narrative. Junction relations PLAY and CAST have none.
	headings := map[string]string{
		"THEATRE":  "name",
		"MOVIE":    "title",
		"GENRE":    "genre",
		"ACTOR":    "aname",
		"DIRECTOR": "dname",
	}
	for rel, attr := range headings {
		if err := g.SetHeading(rel, attr); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(db); err != nil {
		return nil, err
	}
	return g, nil
}

// ExampleMovies builds the running-example instance used throughout §5:
// Woody Allen as both director and actor, his movies with years and genres
// matching Figure 6 and the §5.3 narrative, plus enough surrounding data
// (another director, co-stars, theatres, plays) that queries exercise
// non-trivial joins. It returns the populated database and its schema graph.
func ExampleMovies() (*storage.Database, *schemagraph.Graph, error) {
	db := storage.NewDatabase("movies")
	if err := MoviesSchema(db); err != nil {
		return nil, nil, err
	}
	ins := func(rel string, vals ...storage.Value) error {
		_, err := db.Insert(rel, vals...)
		return err
	}
	steps := []func() error{
		// Directors.
		func() error {
			return ins("DIRECTOR", storage.Int(1), storage.String("Woody Allen"),
				storage.String("Brooklyn, New York, USA"), storage.String("December 1, 1935"))
		},
		func() error {
			return ins("DIRECTOR", storage.Int(2), storage.String("Sofia Coppola"),
				storage.String("New York City, USA"), storage.String("May 14, 1971"))
		},
		// Movies (Figure 6: Match Point 2005, Melinda and Melinda 2004,
		// Anything Else 2003; §1 adds Hollywood Ending 2002 and The Curse of
		// the Jade Scorpion 2001 as actor credits).
		func() error {
			return ins("MOVIE", storage.Int(1), storage.String("Match Point"), storage.Int(2005), storage.Int(1))
		},
		func() error {
			return ins("MOVIE", storage.Int(2), storage.String("Melinda and Melinda"), storage.Int(2004), storage.Int(1))
		},
		func() error {
			return ins("MOVIE", storage.Int(3), storage.String("Anything Else"), storage.Int(2003), storage.Int(1))
		},
		func() error {
			return ins("MOVIE", storage.Int(4), storage.String("Hollywood Ending"), storage.Int(2002), storage.Int(1))
		},
		func() error {
			return ins("MOVIE", storage.Int(5), storage.String("The Curse of the Jade Scorpion"), storage.Int(2001), storage.Int(1))
		},
		func() error {
			return ins("MOVIE", storage.Int(6), storage.String("Lost in Translation"), storage.Int(2003), storage.Int(2))
		},
		// Genres (§5.3 narrative).
		func() error { return ins("GENRE", storage.Int(1), storage.String("Drama")) },
		func() error { return ins("GENRE", storage.Int(1), storage.String("Thriller")) },
		func() error { return ins("GENRE", storage.Int(2), storage.String("Comedy")) },
		func() error { return ins("GENRE", storage.Int(2), storage.String("Drama")) },
		func() error { return ins("GENRE", storage.Int(3), storage.String("Comedy")) },
		func() error { return ins("GENRE", storage.Int(3), storage.String("Romance")) },
		func() error { return ins("GENRE", storage.Int(6), storage.String("Drama")) },
		// Actors.
		func() error {
			return ins("ACTOR", storage.Int(1), storage.String("Woody Allen"),
				storage.String("Brooklyn, New York, USA"), storage.String("December 1, 1935"))
		},
		func() error {
			return ins("ACTOR", storage.Int(2), storage.String("Scarlett Johansson"),
				storage.String("New York City, USA"), storage.String("November 22, 1984"))
		},
		func() error {
			return ins("ACTOR", storage.Int(3), storage.String("Jason Biggs"),
				storage.String("Pompton Plains, New Jersey, USA"), storage.String("May 12, 1978"))
		},
		// Cast (§1: Woody Allen the actor's work includes Hollywood Ending
		// 2002 and The Curse of the Jade Scorpion 2001).
		func() error {
			return ins("CAST", storage.Int(4), storage.Int(1), storage.String("Val Waxman"))
		},
		func() error {
			return ins("CAST", storage.Int(5), storage.Int(1), storage.String("CW Briggs"))
		},
		func() error {
			return ins("CAST", storage.Int(1), storage.Int(2), storage.String("Nola Rice"))
		},
		func() error {
			return ins("CAST", storage.Int(6), storage.Int(2), storage.String("Charlotte"))
		},
		func() error {
			return ins("CAST", storage.Int(3), storage.Int(3), storage.String("Jerry Falk"))
		},
		func() error {
			return ins("CAST", storage.Int(3), storage.Int(1), storage.String("David Dobel"))
		},
		// Theatres and plays.
		func() error {
			return ins("THEATRE", storage.Int(1), storage.String("Odeon"),
				storage.String("210-3214567"), storage.String("Downtown"))
		},
		func() error {
			return ins("THEATRE", storage.Int(2), storage.String("Rex"),
				storage.String("210-7654321"), storage.String("Uptown"))
		},
		func() error {
			return ins("PLAY", storage.Int(1), storage.Int(1), storage.String("2006-01-15"))
		},
		func() error {
			return ins("PLAY", storage.Int(1), storage.Int(2), storage.String("2006-01-16"))
		},
		func() error {
			return ins("PLAY", storage.Int(2), storage.Int(1), storage.String("2006-01-17"))
		},
		func() error {
			return ins("PLAY", storage.Int(2), storage.Int(6), storage.String("2006-01-18"))
		},
	}
	for i, step := range steps {
		if err := step(); err != nil {
			return nil, nil, fmt.Errorf("dataset: example row %d: %w", i, err)
		}
	}
	if violations := db.CheckIntegrity(); len(violations) > 0 {
		return nil, nil, fmt.Errorf("dataset: example database violates integrity: %v", violations[0])
	}
	g, err := PaperGraph(db)
	if err != nil {
		return nil, nil, err
	}
	return db, g, nil
}

package dataset

import (
	"math"
	"reflect"
	"testing"

	"precis/internal/invidx"
	"precis/internal/storage"
)

func TestExampleMoviesIntegrity(t *testing.T) {
	db, g, err := ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	if v := db.CheckIntegrity(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
	if err := g.Validate(db); err != nil {
		t.Errorf("graph: %v", err)
	}
	st := db.Stats()
	if st.Relations != 7 {
		t.Errorf("relations = %d", st.Relations)
	}
	for _, rel := range []string{"THEATRE", "PLAY", "MOVIE", "GENRE", "CAST", "ACTOR", "DIRECTOR"} {
		if st.PerRel[rel] == 0 {
			t.Errorf("relation %s is empty", rel)
		}
	}
}

func TestExampleMoviesWoodyAllenOccurrences(t *testing.T) {
	db, _, err := ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	ix := invidx.New(db)
	occs := ix.Lookup("Woody Allen")
	rels := invidx.Relations(occs)
	if !reflect.DeepEqual(rels, []string{"ACTOR", "DIRECTOR"}) {
		t.Errorf("Woody Allen found in %v, want [ACTOR DIRECTOR]", rels)
	}
}

func TestPaperGraphWorkedExamples(t *testing.T) {
	db, g, err := ExampleMovies()
	if err != nil {
		t.Fatal(err)
	}
	_ = db
	// §3.2: weight of PHONE over THEATRE is 0.8.
	if w := g.Relation("THEATRE").Projection("phone").Weight; w != 0.8 {
		t.Errorf("THEATRE.phone = %v", w)
	}
	// §3.2: weight of PHONE with respect to MOVIE = 0.7 * 1 * 0.8 = 0.56.
	var movieToPlay, playToTheatre float64
	for _, e := range g.Relation("MOVIE").Out() {
		if e.To == "PLAY" {
			movieToPlay = e.Weight
		}
	}
	for _, e := range g.Relation("PLAY").Out() {
		if e.To == "THEATRE" {
			playToTheatre = e.Weight
		}
	}
	if got := movieToPlay * playToTheatre * 0.8; math.Abs(got-0.56) > 1e-9 {
		t.Errorf("transitive phone weight = %v, want 0.56", got)
	}
	// §3.1: GENRE->MOVIE = 1.0, MOVIE->GENRE = 0.9.
	for _, e := range g.Relation("GENRE").Out() {
		if e.To == "MOVIE" && e.Weight != 1.0 {
			t.Errorf("GENRE->MOVIE = %v", e.Weight)
		}
	}
	for _, e := range g.Relation("MOVIE").Out() {
		if e.To == "GENRE" && e.Weight != 0.9 {
			t.Errorf("MOVIE->GENRE = %v", e.Weight)
		}
	}
	// Heading attributes exist where the paper needs them.
	for rel, attr := range map[string]string{"MOVIE": "title", "DIRECTOR": "dname", "ACTOR": "aname"} {
		if g.Relation(rel).Heading != attr {
			t.Errorf("heading of %s = %q, want %q", rel, g.Relation(rel).Heading, attr)
		}
	}
}

func TestSyntheticMoviesDeterministic(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Films = 100
	cfg.Directors = 20
	cfg.Actors = 100
	cfg.Theatres = 5
	a, err := SyntheticMovies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticMovies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed, different databases:\n%s\n%s", a, b)
	}
	cfg.Seed = 2
	c, err := SyntheticMovies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same sizes for fixed counts but content should differ.
	aT := a.Relation("MOVIE").Tuples()
	cT := c.Relation("MOVIE").Tuples()
	same := true
	for i := range aT {
		if aT[i].Values[1] != cT[i].Values[1] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical titles")
	}
}

func TestSyntheticMoviesIntegrity(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Films = 200
	cfg.Directors = 30
	cfg.Actors = 150
	cfg.Theatres = 8
	db, err := SyntheticMovies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v := db.CheckIntegrity(); len(v) != 0 {
		t.Fatalf("violations: %v (first of %d)", v[0], len(v))
	}
	if db.Relation("MOVIE").Len() != 200 {
		t.Errorf("films = %d", db.Relation("MOVIE").Len())
	}
	// Graph over the synthetic database validates too.
	g, err := PaperGraph(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(db); err != nil {
		t.Error(err)
	}
	// Join indexes were created.
	if !db.Relation("CAST").HasIndex("aid") || !db.Relation("MOVIE").HasIndex("did") {
		t.Error("join indexes missing")
	}
}

func TestSyntheticConfigValidation(t *testing.T) {
	if _, err := SyntheticMovies(SyntheticConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestChainShape(t *testing.T) {
	cfg := ChainConfig{Relations: 4, RowsPerRel: 50, Fanout: 3, Seed: 9, UniformRows: true}
	db, g, err := Chain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRelations() != 4 {
		t.Fatalf("relations = %d", db.NumRelations())
	}
	for _, rel := range db.RelationNames() {
		if db.Relation(rel).Len() != 50 {
			t.Errorf("%s has %d rows, want 50", rel, db.Relation(rel).Len())
		}
	}
	if v := db.CheckIntegrity(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
	if err := g.Validate(db); err != nil {
		t.Error(err)
	}
	// Both directions of every FK are join edges.
	if len(g.JoinEdges()) != 6 {
		t.Errorf("join edges = %d, want 6", len(g.JoinEdges()))
	}
	// Every relation's tokens are searchable.
	ix := invidx.New(db)
	for _, rel := range db.RelationNames() {
		if occs := ix.Lookup("tok" + rel); len(occs) == 0 {
			t.Errorf("no occurrences for tok%s", rel)
		}
	}
}

func TestChainNonUniformFanout(t *testing.T) {
	cfg := ChainConfig{Relations: 3, RowsPerRel: 10, Fanout: 2, Seed: 1, UniformRows: false}
	db, _, err := Chain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("R1").Len() != 20 || db.Relation("R2").Len() != 40 {
		t.Errorf("sizes: R1=%d R2=%d", db.Relation("R1").Len(), db.Relation("R2").Len())
	}
	// Deterministic parenting: each parent has exactly Fanout children.
	r1 := db.Relation("R1")
	counts := map[int64]int{}
	r1.Scan(func(tu storage.Tuple) bool {
		counts[tu.Values[2].AsInt()]++
		return true
	})
	for p, n := range counts {
		if n != 2 {
			t.Errorf("parent %d has %d children", p, n)
		}
	}
}

func TestChainValidation(t *testing.T) {
	if _, _, err := Chain(ChainConfig{Relations: 0, RowsPerRel: 1, Fanout: 1}); err == nil {
		t.Error("zero relations accepted")
	}
	if _, _, err := Chain(ChainConfig{Relations: 1, RowsPerRel: 0, Fanout: 1}); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestRandomWeights(t *testing.T) {
	_, g, err := Chain(ChainConfig{Relations: 3, RowsPerRel: 5, Fanout: 1, Seed: 1, UniformRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := RandomWeights(g, 0.3, 0.9, 7); err != nil {
		t.Fatal(err)
	}
	for _, rel := range g.Relations() {
		n := g.Relation(rel)
		for _, p := range n.Projections() {
			if p.Attribute == n.Heading {
				if p.Weight != 1 {
					t.Errorf("heading %s reweighted to %v", p.Key(), p.Weight)
				}
				continue
			}
			if p.Weight == 0 {
				continue // plumbing
			}
			if p.Weight < 0.3 || p.Weight > 0.9 {
				t.Errorf("%s weight %v outside range", p.Key(), p.Weight)
			}
		}
		for _, e := range n.Out() {
			if e.Weight < 0.3 || e.Weight > 0.9 {
				t.Errorf("%s weight %v outside range", e.Key(), e.Weight)
			}
		}
	}
	if err := RandomWeights(g, -1, 0.5, 1); err == nil {
		t.Error("bad range accepted")
	}
	// Determinism.
	_, g2, _ := Chain(ChainConfig{Relations: 3, RowsPerRel: 5, Fanout: 1, Seed: 1, UniformRows: true})
	if err := RandomWeights(g2, 0.3, 0.9, 7); err != nil {
		t.Fatal(err)
	}
	for _, rel := range g.Relations() {
		a := g.Relation(rel).Out()
		b := g2.Relation(rel).Out()
		for i := range a {
			if a[i].Weight != b[i].Weight {
				t.Fatal("RandomWeights not deterministic")
			}
		}
	}
}

func TestStarShape(t *testing.T) {
	db, g, err := Star(StarConfig{Satellites: 5, RowsPerRel: 20, Fanout: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRelations() != 6 {
		t.Fatalf("relations = %d", db.NumRelations())
	}
	if len(g.Relation("HUB").Out()) != 5 {
		t.Errorf("hub out-edges = %d", len(g.Relation("HUB").Out()))
	}
	if v := db.CheckIntegrity(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
	if err := g.Validate(db); err != nil {
		t.Error(err)
	}
	if _, _, err := Star(StarConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestRandomGraph(t *testing.T) {
	g, err := RandomGraph(GraphConfig{Relations: 10, AttrsPerRel: 6, ExtraJoins: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Relations()) != 10 {
		t.Errorf("relations = %d", len(g.Relations()))
	}
	if g.NumProjections() != 60 {
		t.Errorf("projections = %d", g.NumProjections())
	}
	// Connectivity: the spanning chain guarantees at least 18 join edges.
	if len(g.JoinEdges()) < 18 {
		t.Errorf("join edges = %d", len(g.JoinEdges()))
	}
	// Determinism.
	g2, err := RandomGraph(GraphConfig{Relations: 10, AttrsPerRel: 6, ExtraJoins: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.Relation("T3").Projection("a2").Weight != g2.Relation("T3").Projection("a2").Weight {
		t.Error("RandomGraph not deterministic")
	}
	if _, err := RandomGraph(GraphConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

package dataset

import (
	"fmt"
	"math/rand"

	"precis/internal/storage"
)

// SyntheticConfig scales the synthetic IMDB-like database. The zero value
// is tiny; DefaultSyntheticConfig matches the paper's "over 34,000 films"
// snapshot in shape at a laptop-friendly scale.
type SyntheticConfig struct {
	Films         int
	Directors     int
	Actors        int
	Theatres      int
	CastPerFilm   int // average actors per film
	GenresPerFilm int // average genre rows per film
	PlaysPerFilm  int // average theatre listings per film
	Seed          int64
}

// DefaultSyntheticConfig returns a medium-sized configuration suitable for
// functional tests and examples (a few thousand films).
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		Films:         2000,
		Directors:     300,
		Actors:        3000,
		Theatres:      60,
		CastPerFilm:   4,
		GenresPerFilm: 2,
		PlaysPerFilm:  2,
		Seed:          1,
	}
}

// PaperScaleSyntheticConfig mirrors the paper's IMDB snapshot size
// ("information about over 34,000 films").
func PaperScaleSyntheticConfig() SyntheticConfig {
	cfg := DefaultSyntheticConfig()
	cfg.Films = 34000
	cfg.Directors = 4000
	cfg.Actors = 40000
	cfg.Theatres = 500
	return cfg
}

var (
	firstSyllables = []string{"al", "ber", "car", "dan", "el", "fa", "gio", "han", "iv", "jo", "kat", "lu", "mar", "nor", "ol"}
	lastSyllables  = []string{"son", "berg", "man", "ley", "ton", "dale", "field", "worth", "wood", "stein", "ford"}
	titleWords     = []string{"Night", "Shadow", "River", "Glass", "Echo", "Winter", "Crimson", "Silent", "Broken", "Golden",
		"Paper", "Hidden", "Last", "Stolen", "Electric", "Distant", "Burning", "Frozen", "Scarlet", "Velvet"}
	titleNouns = []string{"City", "Dream", "Letter", "Garden", "Mirror", "Station", "Harbor", "Promise", "Secret", "Horizon",
		"Crossing", "Return", "Affair", "Witness", "Journey", "Symphony", "Masquerade", "Labyrinth", "Paradox", "Requiem"}
	genreNames  = []string{"Drama", "Comedy", "Thriller", "Romance", "Horror", "Documentary", "Animation", "Adventure", "Crime", "Mystery"}
	regionNames = []string{"Downtown", "Uptown", "Midtown", "Harbor", "Old Town", "Riverside", "Hillside", "Westside"}
	cityNames   = []string{"Brooklyn, New York, USA", "Athens, Greece", "London, UK", "Paris, France", "Rome, Italy",
		"Berlin, Germany", "Madrid, Spain", "Vienna, Austria"}
	monthNames = []string{"January", "February", "March", "April", "May", "June",
		"July", "August", "September", "October", "November", "December"}
	roleNames = []string{"Lead", "Detective", "Doctor", "Professor", "Stranger", "Neighbor", "Captain", "Journalist"}
)

func personName(r *rand.Rand) string {
	first := firstSyllables[r.Intn(len(firstSyllables))]
	last := lastSyllables[r.Intn(len(lastSyllables))]
	return capitalize(first) + " " + capitalize(last+firstSyllables[r.Intn(len(firstSyllables))])
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}

func movieTitle(r *rand.Rand, i int) string {
	// Include the serial number so every title is unique and individually
	// addressable by a keyword query.
	return fmt.Sprintf("%s %s %d", titleWords[r.Intn(len(titleWords))], titleNouns[r.Intn(len(titleNouns))], i)
}

func birthDate(r *rand.Rand) string {
	return fmt.Sprintf("%s %d, %d", monthNames[r.Intn(12)], 1+r.Intn(28), 1920+r.Intn(70))
}

// zipfIndex draws an index in [0, n) with a skew favouring small indexes,
// approximating the popularity skew of real movie data (a few prolific
// directors and actors account for many films).
func zipfIndex(r *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	u := r.Float64()
	// Quadratic skew: density 2(1-x) over [0,1).
	x := 1 - (1 - u*u)
	i := int(x * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// SyntheticMovies builds a populated movies database (paper schema) at the
// configured scale, with deterministic content for a given seed, its join
// indexes created, and referential integrity guaranteed by construction.
func SyntheticMovies(cfg SyntheticConfig) (*storage.Database, error) {
	if cfg.Films <= 0 || cfg.Directors <= 0 || cfg.Actors <= 0 || cfg.Theatres <= 0 {
		return nil, fmt.Errorf("dataset: synthetic config needs positive sizes, got %+v", cfg)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	db := storage.NewDatabase("synthetic-movies")
	if err := MoviesSchema(db); err != nil {
		return nil, err
	}
	for d := 1; d <= cfg.Directors; d++ {
		_, err := db.Insert("DIRECTOR", storage.Int(int64(d)), storage.String(personName(r)),
			storage.String(cityNames[r.Intn(len(cityNames))]), storage.String(birthDate(r)))
		if err != nil {
			return nil, err
		}
	}
	for a := 1; a <= cfg.Actors; a++ {
		_, err := db.Insert("ACTOR", storage.Int(int64(a)), storage.String(personName(r)),
			storage.String(cityNames[r.Intn(len(cityNames))]), storage.String(birthDate(r)))
		if err != nil {
			return nil, err
		}
	}
	for t := 1; t <= cfg.Theatres; t++ {
		_, err := db.Insert("THEATRE", storage.Int(int64(t)),
			storage.String(fmt.Sprintf("%s Theatre %d", titleWords[r.Intn(len(titleWords))], t)),
			storage.String(fmt.Sprintf("210-%07d", r.Intn(10000000))),
			storage.String(regionNames[r.Intn(len(regionNames))]))
		if err != nil {
			return nil, err
		}
	}
	for m := 1; m <= cfg.Films; m++ {
		did := 1 + zipfIndex(r, cfg.Directors)
		_, err := db.Insert("MOVIE", storage.Int(int64(m)), storage.String(movieTitle(r, m)),
			storage.Int(int64(1950+r.Intn(56))), storage.Int(int64(did)))
		if err != nil {
			return nil, err
		}
		nGenres := 1 + r.Intn(2*cfg.GenresPerFilm)
		seen := map[int]bool{}
		for k := 0; k < nGenres; k++ {
			gi := r.Intn(len(genreNames))
			if seen[gi] {
				continue
			}
			seen[gi] = true
			if _, err := db.Insert("GENRE", storage.Int(int64(m)), storage.String(genreNames[gi])); err != nil {
				return nil, err
			}
		}
		nCast := 1 + r.Intn(2*cfg.CastPerFilm)
		for k := 0; k < nCast; k++ {
			aid := 1 + zipfIndex(r, cfg.Actors)
			role := fmt.Sprintf("%s %d", roleNames[r.Intn(len(roleNames))], k+1)
			if _, err := db.Insert("CAST", storage.Int(int64(m)), storage.Int(int64(aid)), storage.String(role)); err != nil {
				return nil, err
			}
		}
		nPlays := r.Intn(2*cfg.PlaysPerFilm + 1)
		for k := 0; k < nPlays; k++ {
			tid := 1 + r.Intn(cfg.Theatres)
			date := fmt.Sprintf("2005-%02d-%02d", 1+r.Intn(12), 1+r.Intn(28))
			if _, err := db.Insert("PLAY", storage.Int(int64(tid)), storage.Int(int64(m)), storage.String(date)); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

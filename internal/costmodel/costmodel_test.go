package costmodel

import (
	"testing"
	"time"

	"precis/internal/sqlx"
)

func TestFormulas(t *testing.T) {
	p := Params{IndexTime: 2 * time.Microsecond, TupleTime: 1 * time.Microsecond}
	if p.PerTuple() != 3*time.Microsecond {
		t.Errorf("PerTuple = %v", p.PerTuple())
	}
	// Formula 1 over measured cardinalities.
	cards := map[string]int{"A": 10, "B": 20}
	if got := Cost(p, cards); got != 90*time.Microsecond {
		t.Errorf("Cost = %v", got)
	}
	// Formula 2: uniform cardinalities.
	if got := CostUniform(p, 5, 4); got != 60*time.Microsecond {
		t.Errorf("CostUniform = %v", got)
	}
	// Formula 2 is Formula 1 with uniform cards.
	if CostUniform(p, 7, 3) != Cost(p, map[string]int{"a": 7, "b": 7, "c": 7}) {
		t.Error("formulas disagree")
	}
}

func TestSolveCR(t *testing.T) {
	p := Params{IndexTime: 2 * time.Microsecond, TupleTime: 1 * time.Microsecond}
	// budget 60us, 4 relations, 3us per tuple -> cR = 5.
	if got := SolveCR(p, 60*time.Microsecond, 4); got != 5 {
		t.Errorf("SolveCR = %d", got)
	}
	// Round-trip: predicted cost of the solved cR fits the budget.
	for _, nR := range []int{1, 2, 4, 8} {
		budget := 100 * time.Microsecond
		cr := SolveCR(p, budget, nR)
		if CostUniform(p, cr, nR) > budget {
			t.Errorf("nR=%d: solved cR %d exceeds budget", nR, cr)
		}
		if CostUniform(p, cr+1, nR) <= budget {
			t.Errorf("nR=%d: cR %d is not maximal", nR, cr)
		}
	}
	if SolveCR(p, time.Second, 0) != 0 {
		t.Error("nR=0 should solve to 0")
	}
	if SolveCR(Params{}, time.Second, 4) != 0 {
		t.Error("zero params should solve to 0")
	}
	if SolveCR(p, 0, 4) != 0 {
		t.Error("zero budget should solve to 0")
	}
}

func TestFromStats(t *testing.T) {
	p := Params{IndexTime: 10 * time.Nanosecond, TupleTime: 3 * time.Nanosecond}
	s := sqlx.Stats{IndexLookups: 4, TupleReads: 100}
	if got := FromStats(p, s); got != 340*time.Nanosecond {
		t.Errorf("FromStats = %v", got)
	}
}

func TestCalibrate(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration timing in -short mode")
	}
	p, err := Calibrate(CalibrationConfig{Rows: 2000, Group: 10, Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: both parameters are non-negative and the per-tuple cost is
	// positive (an in-memory engine still does real work per tuple).
	if p.TupleTime < 0 || p.IndexTime < 0 {
		t.Errorf("negative params: %v", p)
	}
	if p.PerTuple() <= 0 {
		t.Errorf("per-tuple cost = %v", p.PerTuple())
	}
	// And implausibly large values indicate a broken measurement.
	if p.PerTuple() > time.Millisecond {
		t.Errorf("per-tuple cost %v implausibly large", p.PerTuple())
	}
}

func TestCalibrationDefaults(t *testing.T) {
	var cfg CalibrationConfig
	cfg.defaults()
	if cfg.Rows != 5000 || cfg.Group != 20 || cfg.Rounds != 200 {
		t.Errorf("defaults = %+v", cfg)
	}
}

package costmodel

import (
	"strings"
	"testing"
	"time"

	"precis/internal/sqlx"
)

// TestCostEdgeCases pins the formulas' behavior on degenerate inputs: the
// web layer feeds them straight from user-controlled parameters, so they
// must stay total functions.
func TestCostEdgeCases(t *testing.T) {
	p := Params{IndexTime: 2 * time.Microsecond, TupleTime: time.Microsecond}
	if got := Cost(p, nil); got != 0 {
		t.Errorf("Cost(nil) = %v", got)
	}
	if got := Cost(p, map[string]int{}); got != 0 {
		t.Errorf("Cost(empty) = %v", got)
	}
	// A zero-cardinality relation contributes nothing.
	if got := Cost(p, map[string]int{"A": 0, "B": 2}); got != 6*time.Microsecond {
		t.Errorf("Cost with zero card = %v", got)
	}
	if got := CostUniform(p, 0, 10); got != 0 {
		t.Errorf("CostUniform(cR=0) = %v", got)
	}
	if got := CostUniform(p, 10, 0); got != 0 {
		t.Errorf("CostUniform(nR=0) = %v", got)
	}
	// Zero-cost params predict zero regardless of cardinality.
	if got := CostUniform(Params{}, 100, 100); got != 0 {
		t.Errorf("CostUniform(zero params) = %v", got)
	}
}

func TestSolveCREdgeCases(t *testing.T) {
	p := Params{IndexTime: 2 * time.Microsecond, TupleTime: time.Microsecond}
	// Negative inputs are clamped to zero, never panic or go negative.
	if got := SolveCR(p, -time.Second, 4); got != 0 {
		t.Errorf("negative budget: cR = %d", got)
	}
	if got := SolveCR(p, time.Second, -3); got != 0 {
		t.Errorf("negative nR: cR = %d", got)
	}
	// Negative calibration (clock skew during Calibrate) must not produce
	// a bogus huge cardinality.
	neg := Params{IndexTime: -time.Microsecond, TupleTime: 500 * time.Nanosecond}
	if got := SolveCR(neg, time.Second, 4); got != 0 {
		t.Errorf("negative per-tuple cost: cR = %d", got)
	}
	// Budget below one tuple's cost solves to 0 — the engine then returns
	// seeds only rather than overshooting the budget.
	if got := SolveCR(p, time.Microsecond, 4); got != 0 {
		t.Errorf("sub-tuple budget: cR = %d", got)
	}
	// Exact fit is inclusive: 4 relations x 5 tuples x 3us = 60us.
	if got := SolveCR(p, 60*time.Microsecond, 4); got != 5 {
		t.Errorf("exact budget: cR = %d", got)
	}
	// One nanosecond less drops one tuple.
	if got := SolveCR(p, 60*time.Microsecond-time.Nanosecond, 4); got != 4 {
		t.Errorf("just-under budget: cR = %d", got)
	}
	// A very large budget stays positive (no wrap-around).
	if got := SolveCR(p, 24*time.Hour, 1); got <= 0 {
		t.Errorf("large budget: cR = %d", got)
	}
}

func TestFromStatsEdgeCases(t *testing.T) {
	p := Params{IndexTime: 10 * time.Nanosecond, TupleTime: 3 * time.Nanosecond}
	if got := FromStats(p, sqlx.Stats{}); got != 0 {
		t.Errorf("FromStats(zero) = %v", got)
	}
	// Index-only and tuple-only workloads isolate each parameter.
	if got := FromStats(p, sqlx.Stats{IndexLookups: 7}); got != 70*time.Nanosecond {
		t.Errorf("index-only = %v", got)
	}
	if got := FromStats(p, sqlx.Stats{TupleReads: 7}); got != 21*time.Nanosecond {
		t.Errorf("tuple-only = %v", got)
	}
}

func TestParamsString(t *testing.T) {
	p := Params{IndexTime: 2 * time.Microsecond, TupleTime: time.Microsecond}
	s := p.String()
	if !strings.Contains(s, "IndexTime=2µs") || !strings.Contains(s, "TupleTime=1µs") {
		t.Errorf("String = %q", s)
	}
}

// TestCalibrationDefaultsPartial checks each field defaults independently.
func TestCalibrationDefaultsPartial(t *testing.T) {
	cfg := CalibrationConfig{Rows: 100}
	cfg.defaults()
	if cfg.Rows != 100 || cfg.Group != 20 || cfg.Rounds != 200 {
		t.Errorf("partial defaults = %+v", cfg)
	}
	// Group 1 would divide by zero in the solver (G-1); it defaults too.
	cfg = CalibrationConfig{Group: 1}
	cfg.defaults()
	if cfg.Group != 20 {
		t.Errorf("Group=1 not defaulted: %+v", cfg)
	}
}

// TestCalibrateTiny drives the groups<1 guard: fewer rows than one group
// still calibrates (a single group) instead of dividing by zero.
func TestCalibrateTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration timing in -short mode")
	}
	p, err := Calibrate(CalibrationConfig{Rows: 10, Group: 20, Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if p.IndexTime < 0 || p.TupleTime < 0 {
		t.Errorf("negative params: %v", p)
	}
}

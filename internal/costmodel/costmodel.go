// Package costmodel implements the paper's cost model for the Result
// Database Generator (§6):
//
//	Cost(D') = Σ_i card(R'_i) · (IndexTime + TupleTime)      (Formula 1)
//	Cost(D') = c_R · n_R · (IndexTime + TupleTime)           (Formula 2)
//	c_R      = cost_M / (n_R · (IndexTime + TupleTime))      (Formula 3)
//
// where IndexTime is the time to find a tuple id for a given value in an
// index and TupleTime the time to read a tuple given its id. Formula 3
// turns a desired response time cost_M into a cardinality constraint.
package costmodel

import (
	"fmt"
	"time"

	"precis/internal/sqlx"
	"precis/internal/storage"
)

// Params are the calibrated per-operation costs of the underlying engine.
type Params struct {
	IndexTime time.Duration
	TupleTime time.Duration
}

// PerTuple returns IndexTime + TupleTime, the cost of landing one tuple.
func (p Params) PerTuple() time.Duration { return p.IndexTime + p.TupleTime }

// String renders the parameters.
func (p Params) String() string {
	return fmt.Sprintf("IndexTime=%v TupleTime=%v", p.IndexTime, p.TupleTime)
}

// Cost implements Formula (1) over measured per-relation cardinalities.
func Cost(p Params, cards map[string]int) time.Duration {
	var total time.Duration
	for _, n := range cards {
		total += time.Duration(n) * p.PerTuple()
	}
	return total
}

// CostUniform implements Formula (2): all n_R relations receive c_R tuples.
func CostUniform(p Params, cR, nR int) time.Duration {
	return time.Duration(cR*nR) * p.PerTuple()
}

// SolveCR implements Formula (3): the largest per-relation cardinality
// whose predicted cost stays within budget. Returns 0 when even one tuple
// per relation exceeds the budget.
func SolveCR(p Params, budget time.Duration, nR int) int {
	if nR <= 0 || p.PerTuple() <= 0 {
		return 0
	}
	cr := int(budget / (time.Duration(nR) * p.PerTuple()))
	if cr < 0 {
		return 0
	}
	return cr
}

// FromStats predicts the cost of the physical work recorded in s: index
// probes at IndexTime each plus tuple reads at TupleTime each. This is the
// generalization of Formula 1 when per-relation cardinalities are not
// uniform.
func FromStats(p Params, s sqlx.Stats) time.Duration {
	return time.Duration(s.IndexLookups)*p.IndexTime + time.Duration(s.TupleReads)*p.TupleTime
}

// CalibrationConfig tunes Calibrate. The zero value uses sensible defaults.
type CalibrationConfig struct {
	Rows   int // rows in the scratch relation (default 5000)
	Group  int // tuples per indexed value for the multi-tuple probe (default 20)
	Rounds int // timing repetitions (default 200)
}

func (c *CalibrationConfig) defaults() {
	if c.Rows <= 0 {
		c.Rows = 5000
	}
	if c.Group <= 1 {
		c.Group = 20
	}
	if c.Rounds <= 0 {
		c.Rounds = 200
	}
}

// Calibrate measures IndexTime and TupleTime on a scratch database built
// with the same storage engine the précis system runs on. It times two
// query populations — single-match index probes (IndexTime + TupleTime) and
// G-match probes (IndexTime + G·TupleTime) — and solves the two equations.
func Calibrate(cfg CalibrationConfig) (Params, error) {
	cfg.defaults()
	db := storage.NewDatabase("calibration")
	eng := sqlx.NewEngine(db)
	if _, err := eng.Exec("CREATE TABLE CALIB (uniq INT, grp INT, payload TEXT, PRIMARY KEY (uniq))"); err != nil {
		return Params{}, err
	}
	groups := cfg.Rows / cfg.Group
	if groups < 1 {
		groups = 1
	}
	for i := 0; i < cfg.Rows; i++ {
		q := fmt.Sprintf("INSERT INTO CALIB VALUES (%d, %d, 'payload-%d')", i, i%groups, i)
		if _, err := eng.Exec(q); err != nil {
			return Params{}, err
		}
	}
	rel := db.Relation("CALIB")
	if _, err := rel.CreateIndex("grp"); err != nil {
		return Params{}, err
	}

	// Warm up both paths.
	for i := 0; i < 32; i++ {
		eng.MustExec(fmt.Sprintf("SELECT payload FROM CALIB WHERE uniq = %d", i%cfg.Rows))
		eng.MustExec(fmt.Sprintf("SELECT payload FROM CALIB WHERE grp = %d", i%groups))
	}

	single := time.Duration(0)
	start := time.Now()
	for i := 0; i < cfg.Rounds; i++ {
		eng.MustExec(fmt.Sprintf("SELECT payload FROM CALIB WHERE uniq = %d", (i*37)%cfg.Rows))
	}
	single = time.Since(start) / time.Duration(cfg.Rounds)

	start = time.Now()
	for i := 0; i < cfg.Rounds; i++ {
		eng.MustExec(fmt.Sprintf("SELECT payload FROM CALIB WHERE grp = %d", (i*13)%groups))
	}
	multi := time.Since(start) / time.Duration(cfg.Rounds)

	// single = Index + 1·Tuple ; multi = Index + G·Tuple.
	g := time.Duration(cfg.Group)
	tuple := (multi - single) / (g - 1)
	if tuple < 0 {
		tuple = 0
	}
	index := single - tuple
	if index < 0 {
		index = 0
	}
	return Params{IndexTime: index, TupleTime: tuple}, nil
}

// Xmlsearch: précis queries over semi-structured data — the paper's §7
// remark that the approach "is applicable to other types of
// (semi-)structured data as well". A data-centric XML bibliography is
// shredded into a relational database plus a weighted schema graph, and
// the ordinary précis pipeline answers keyword queries over it.
package main

import (
	"fmt"
	"log"
	"strings"

	"precis"
	"precis/internal/xmlmap"
)

const bibliography = `<?xml version="1.0"?>
<bibliography>
  <book year="1974">
    <title>The Dispossessed</title>
    <publisher>Harper and Row</publisher>
    <author><name>Ursula K. Le Guin</name><country>USA</country></author>
    <keyword>anarchism</keyword>
    <keyword>utopia</keyword>
    <keyword>physics</keyword>
  </book>
  <book year="1969">
    <title>The Left Hand of Darkness</title>
    <publisher>Ace Books</publisher>
    <author><name>Ursula K. Le Guin</name><country>USA</country></author>
    <keyword>gender</keyword>
    <keyword>winter</keyword>
  </book>
  <book year="1972">
    <title>Invisible Cities</title>
    <publisher>Einaudi</publisher>
    <author><name>Italo Calvino</name><country>Italy</country></author>
    <keyword>cities</keyword>
    <keyword>memory</keyword>
  </book>
</bibliography>`

func main() {
	res, err := xmlmap.Shred(strings.NewReader(bibliography))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("shredded XML into relations:")
	for _, rel := range res.DB.RelationNames() {
		fmt.Printf("  %s\n", res.DB.Relation(rel).Schema())
	}
	fmt.Println()

	eng, err := precis.New(res.DB, res.Graph)
	if err != nil {
		log.Fatal(err)
	}
	for _, query := range []string{`"Le Guin"`, "anarchism", "Einaudi"} {
		ans, err := eng.QueryString(query, precis.Options{
			Degree:      precis.MinPathWeight(0.5),
			Cardinality: precis.MaxTuplesPerRelation(10),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n%s\n\n", query, ans.Narrative)
	}
}

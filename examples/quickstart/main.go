// Quickstart: build a tiny database, annotate its schema graph, and answer
// a précis query — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"precis"
	"precis/internal/schemagraph"
	"precis/internal/storage"
)

func main() {
	// 1. A two-relation database: authors and their books.
	db := storage.NewDatabase("library")
	db.MustCreateRelation(storage.MustSchema("AUTHOR", "aid",
		storage.Column{Name: "aid", Type: storage.TypeInt},
		storage.Column{Name: "name", Type: storage.TypeString},
		storage.Column{Name: "country", Type: storage.TypeString},
	))
	db.MustCreateRelation(storage.MustSchema("BOOK", "bid",
		storage.Column{Name: "bid", Type: storage.TypeInt},
		storage.Column{Name: "title", Type: storage.TypeString},
		storage.Column{Name: "year", Type: storage.TypeInt},
		storage.Column{Name: "aid", Type: storage.TypeInt},
	))
	must(db.AddForeignKey(storage.ForeignKey{
		FromRelation: "BOOK", FromColumn: "aid", ToRelation: "AUTHOR", ToColumn: "aid",
	}))
	must(db.CreateJoinIndexes())

	insert := func(rel string, vals ...storage.Value) {
		if _, err := db.Insert(rel, vals...); err != nil {
			log.Fatal(err)
		}
	}
	insert("AUTHOR", storage.Int(1), storage.String("Ursula K. Le Guin"), storage.String("USA"))
	insert("AUTHOR", storage.Int(2), storage.String("Italo Calvino"), storage.String("Italy"))
	insert("BOOK", storage.Int(1), storage.String("The Dispossessed"), storage.Int(1974), storage.Int(1))
	insert("BOOK", storage.Int(2), storage.String("The Left Hand of Darkness"), storage.Int(1969), storage.Int(1))
	insert("BOOK", storage.Int(3), storage.String("Invisible Cities"), storage.Int(1972), storage.Int(2))

	// 2. The weighted schema graph: how strongly each attribute and join
	// matters for an answer. An answer about an author should include the
	// books (weight 1); an answer about a book mentions its author a bit
	// less eagerly (0.9).
	g := schemagraph.FromDatabase(db)
	mustProj(g, "AUTHOR", "aid", 0)
	mustProj(g, "AUTHOR", "country", 0.8)
	mustProj(g, "BOOK", "bid", 0)
	mustProj(g, "BOOK", "aid", 0)
	mustProj(g, "BOOK", "year", 0.9)
	must(g.SetHeading("AUTHOR", "name"))
	must(g.SetHeading("BOOK", "title"))
	for _, e := range g.Relation("BOOK").Out() {
		e.Weight = 0.9 // BOOK -> AUTHOR
	}
	// Narrative templates (optional — defaults exist).
	g.Relation("AUTHOR").Sentence = `@NAME + " (" + @COUNTRY + ")."`
	for _, e := range g.Relation("AUTHOR").Out() {
		e.Label = `@NAME + " wrote " + BOOK_LIST`
	}

	// 3. The précis engine.
	eng, err := precis.New(db, g)
	must(err)
	must(eng.DefineMacro(`DEFINE BOOK_LIST as ` +
		`[i<arityOf(@TITLE)] {@TITLE[$i$] + " (" + @YEAR[$i$] + "), "} ` +
		`[i=arityOf(@TITLE)] {@TITLE[$i$] + " (" + @YEAR[$i$] + ")."}`))

	// 4. Ask about Le Guin: the answer is a sub-database (her tuple plus
	// her books) and a one-paragraph narrative.
	ans, err := eng.QueryString(`"Le Guin"`, precis.Options{
		Degree:      precis.MinPathWeight(0.8),
		Cardinality: precis.MaxTuplesPerRelation(5),
	})
	must(err)

	fmt.Println("narrative:")
	fmt.Println(" ", ans.Narrative)
	fmt.Println("\nresult database:")
	for _, rel := range ans.Database.RelationNames() {
		fmt.Printf("  %s: %d tuples, columns %v\n",
			rel, ans.Database.Relation(rel).Len(), ans.Result.DisplayColumns(rel))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustProj(g *schemagraph.Graph, rel, attr string, w float64) {
	if _, err := g.AddProjection(rel, attr, w); err != nil {
		log.Fatal(err)
	}
}

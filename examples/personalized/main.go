// Personalized: the §3.1 personalization scenario — the same query answered
// differently for different stored user profiles (a reviewer exploring
// deeply, a cinema fan wanting a short answer, and a theatre-goer whose
// weights emphasize where a movie plays).
package main

import (
	"fmt"
	"log"

	"precis"
	"precis/internal/dataset"
	"precis/internal/profile"
)

func main() {
	db, g, err := dataset.ExampleMovies()
	if err != nil {
		log.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		log.Fatal(err)
	}
	eng, err := precis.New(db, g)
	if err != nil {
		log.Fatal(err)
	}
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			log.Fatal(err)
		}
	}

	// Three stored profiles: the paper's reviewer and fan archetypes, plus
	// a theatre-goer whose weight overlay makes screenings highly relevant.
	profiles := []*precis.Profile{
		profile.Reviewer(),
		profile.Fan(),
		{
			Name:        "theatregoer",
			Description: "cares about where and when movies play",
			Weights: map[string]float64{
				"MOVIE->PLAY(mid=mid)":   1.0,
				"PLAY->THEATRE(tid=tid)": 1.0,
				"THEATRE.region":         1.0,
				"PLAY.date":              0.95,
			},
			Degree:      precis.MinPathWeight(0.9),
			Cardinality: precis.MaxTuplesPerRelation(5),
		},
	}
	for _, p := range profiles {
		if err := eng.AddProfile(p); err != nil {
			log.Fatal(err)
		}
	}

	const query = `"Match Point"`
	for _, name := range eng.Profiles() {
		ans, err := eng.QueryString(query, precis.Options{Profile: name})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== profile %q: %d relations, %d tuples ===\n",
			name, ans.Database.NumRelations(), ans.Database.TotalTuples())
		fmt.Printf("relations: %v\n", ans.Database.RelationNames())
		fmt.Println(ans.Narrative)
		fmt.Println()
	}
}

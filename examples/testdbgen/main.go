// Testdbgen: the paper's second motivating use case (§1) — extracting a
// small sub-database that conforms to the original schema and satisfies its
// constraints, for testing applications or demonstrating software against
// realistic data without shipping the full production database.
package main

import (
	"fmt"
	"log"
	"sort"

	"precis"
	"precis/internal/dataset"
	"precis/internal/storage"
)

func main() {
	// The "production" database: a few thousand films.
	cfg := dataset.DefaultSyntheticConfig()
	cfg.Films = 3000
	prod, err := dataset.SyntheticMovies(cfg)
	if err != nil {
		log.Fatal(err)
	}
	g, err := dataset.PaperGraph(prod)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := precis.New(prod, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("production database: %d relations, %d tuples\n",
		prod.NumRelations(), prod.TotalTuples())

	// Extract a test database seeded by a genre: everything reachable from
	// Drama rows, capped at 50 tuples per relation. Weight threshold near
	// zero pulls in the whole schema region around the seeds.
	ans, err := eng.Query([]string{"Drama"}, precis.Options{
		Degree:        precis.MinPathWeight(0.05),
		Cardinality:   precis.MaxTuplesPerRelation(50),
		SkipNarrative: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	test := ans.Database
	fmt.Printf("extracted test database: %d relations, %d tuples\n",
		test.NumRelations(), test.TotalTuples())

	rels := test.RelationNames()
	sort.Strings(rels)
	for _, rel := range rels {
		fmt.Printf("  %-10s %4d tuples  %s\n", rel, test.Relation(rel).Len(),
			test.Relation(rel).Schema())
	}

	// The guarantees that make it usable as a test fixture:
	// 1. it is a true sub-database (schema subset, tuple projections);
	if err := storage.VerifySubDatabase(prod, test); err != nil {
		log.Fatalf("sub-database check failed: %v", err)
	}
	fmt.Println("sub-database check: OK (schema subset, every tuple a projection of a production tuple)")

	// 2. it carries the original foreign keys, and the extraction walked
	//    joins so references resolve inside the extract.
	fmt.Printf("foreign keys carried over: %d\n", len(test.ForeignKeys()))
	for _, jc := range storage.CheckJoinConsistency(prod, test) {
		fmt.Printf("  %-28s %d/%d references satisfied inside the extract\n",
			jc.ForeignKey, jc.Satisfied, jc.Referencing)
	}
}

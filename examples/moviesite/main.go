// Moviesite: the paper's motivating scenario — a web-accessible movies
// database explored by keyword queries. A visitor types free-form queries
// and progressively widens the explored region by lowering the weight
// threshold, exactly the interactive exploration of §3.1.
package main

import (
	"fmt"
	"log"

	"precis"
	"precis/internal/dataset"
)

func main() {
	cfg := dataset.DefaultSyntheticConfig()
	cfg.Films = 1000
	db, err := dataset.SyntheticMovies(cfg)
	if err != nil {
		log.Fatal(err)
	}
	g, err := dataset.PaperGraph(db)
	if err != nil {
		log.Fatal(err)
	}
	if err := dataset.AnnotateNarrative(g); err != nil {
		log.Fatal(err)
	}
	eng, err := precis.New(db, g)
	if err != nil {
		log.Fatal(err)
	}
	for _, def := range dataset.StandardMacros() {
		if err := eng.DefineMacro(def); err != nil {
			log.Fatal(err)
		}
	}

	// A visitor heard about some director; query their name.
	director := db.Relation("DIRECTOR").Tuples()[0].Values[1].AsString()
	fmt.Printf("visitor searches for %q\n\n", director)

	// First pass: a tight précis — only the most related information.
	for _, w := range []float64{0.95, 0.9, 0.5} {
		ans, err := eng.Query([]string{director}, precis.Options{
			Degree:      precis.MinPathWeight(w),
			Cardinality: precis.MaxTuplesPerRelation(4),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== weight threshold %.2f: %d relations, %d tuples ===\n",
			w, ans.Database.NumRelations(), ans.Database.TotalTuples())
		fmt.Println(ans.Narrative)
		fmt.Println()
	}

	// The visitor follows a "hyperlink": a movie title from the answer
	// becomes the next query — the iterative searching §1 describes.
	movies := db.Relation("MOVIE")
	ti := movies.Schema().ColumnIndex("title")
	next := ""
	// Pick the first movie for the follow-up query.
	for _, t := range movies.Tuples() {
		next = t.Values[ti].AsString()
		break
	}
	if next != "" {
		fmt.Printf("visitor follows up with %q\n\n", next)
		ans, err := eng.Query([]string{next}, precis.Options{
			Degree:      precis.MinPathWeight(0.5),
			Cardinality: precis.MaxTuplesPerRelation(4),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ans.Narrative)
	}
}
